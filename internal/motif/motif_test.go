package motif

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"homesight/internal/timeseries"
)

var mon = time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)

// inst builds an instance from a gateway ID, day ordinal and values.
func inst(gw string, day int, vals []float64) Instance {
	return Instance{
		GatewayID: gw,
		Window:    timeseries.Window{Start: mon.AddDate(0, 0, day), Values: vals, Ordinal: day},
	}
}

// eveningShape returns an 8-point daily window with an evening bump, noised.
func eveningShape(rng *rand.Rand, noise float64) []float64 {
	base := []float64{100, 50, 200, 400, 600, 900, 60000, 45000}
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v * math.Exp(noise*rng.NormFloat64())
	}
	return out
}

// morningShape has its bump in the morning bins.
func morningShape(rng *rand.Rand, noise float64) []float64 {
	base := []float64{100, 50, 55000, 48000, 800, 500, 300, 150}
	out := make([]float64, len(base))
	for i, v := range base {
		out[i] = v * math.Exp(noise*rng.NormFloat64())
	}
	return out
}

func TestMineGroupsSimilarWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var insts []Instance
	for d := 0; d < 10; d++ {
		insts = append(insts, inst(fmt.Sprintf("gw%02d", d%3), d, eveningShape(rng, 0.08)))
	}
	for d := 10; d < 16; d++ {
		insts = append(insts, inst(fmt.Sprintf("gw%02d", d%3), d, morningShape(rng, 0.08)))
	}
	motifs := Default.Mine(insts)
	if len(motifs) != 2 {
		t.Fatalf("got %d motifs, want 2 (evening + morning)", len(motifs))
	}
	if motifs[0].Support() != 10 || motifs[1].Support() != 6 {
		t.Errorf("supports = %d, %d; want 10, 6", motifs[0].Support(), motifs[1].Support())
	}
	// IDs assigned by descending support.
	if motifs[0].ID != 0 || motifs[1].ID != 1 {
		t.Errorf("IDs = %d, %d", motifs[0].ID, motifs[1].ID)
	}
}

func TestMineKeepsDissimilarWindowsApart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var insts []Instance
	// Random windows: no repeated structure → no motifs of support >= 2
	// (or at most a few accidental pairs).
	for d := 0; d < 20; d++ {
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = rng.ExpFloat64() * 1e5
		}
		insts = append(insts, inst("gw00", d, vals))
	}
	motifs := Default.Mine(insts)
	total := 0
	for _, m := range motifs {
		total += m.Support()
	}
	if total > 8 {
		t.Errorf("%d/20 random windows landed in motifs, want few", total)
	}
}

func TestMineDefinitionProperties(t *testing.T) {
	// Verify Definition 5 on the output: every member has a close peer
	// (cor >= φ) and clears the group bound (cor >= ¾φ) with every other.
	rng := rand.New(rand.NewSource(3))
	var insts []Instance
	for d := 0; d < 12; d++ {
		insts = append(insts, inst("gw00", d, eveningShape(rng, 0.15)))
	}
	for d := 12; d < 20; d++ {
		insts = append(insts, inst("gw01", d, morningShape(rng, 0.15)))
	}
	motifs := Default.Mine(insts)
	phi := Default.phi()
	group := Default.groupThreshold()
	for _, m := range motifs {
		for i, a := range m.Members {
			hasPeer := false
			for j, b := range m.Members {
				if i == j {
					continue
				}
				s := Default.Measure.Similarity(a.Window.Values, b.Window.Values)
				if s >= phi {
					hasPeer = true
				}
				// The greedy construction checks the group bound at insert
				// time; verify it still holds for the final sets.
				if s < group-1e-9 {
					t.Fatalf("motif %d: members %d,%d below group bound: %.3f", m.ID, i, j, s)
				}
			}
			if !hasPeer {
				t.Fatalf("motif %d: member %d has no close peer", m.ID, i)
			}
		}
	}
}

func TestMergeCombinesCompatibleMotifs(t *testing.T) {
	// Loose miner: high phi keeps two noisy evening groups separate during
	// construction, but the 0.6 merge pass should reunite them.
	rng := rand.New(rand.NewSource(4))
	var insts []Instance
	for d := 0; d < 6; d++ {
		insts = append(insts, inst("gw00", d, eveningShape(rng, 0.02)))
	}
	// Same shape scaled ×100: correlation-identical.
	for d := 6; d < 12; d++ {
		vals := eveningShape(rng, 0.02)
		for i := range vals {
			vals[i] *= 100
		}
		insts = append(insts, inst("gw01", d, vals))
	}
	motifs := Default.Mine(insts)
	if len(motifs) != 1 {
		t.Fatalf("got %d motifs, want 1 (scale-invariant grouping)", len(motifs))
	}
	if motifs[0].Support() != 12 {
		t.Errorf("support = %d, want 12", motifs[0].Support())
	}
}

func TestRepeatShareAndGateways(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := &Motif{}
	// gw00 contributes 3 members, gw01 and gw02 one each.
	for d := 0; d < 3; d++ {
		m.Members = append(m.Members, inst("gw00", d, eveningShape(rng, 0)))
	}
	m.Members = append(m.Members, inst("gw01", 3, eveningShape(rng, 0)))
	m.Members = append(m.Members, inst("gw02", 4, eveningShape(rng, 0)))
	if got := m.RepeatShare(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("repeat share = %g, want 0.6", got)
	}
	gws := m.Gateways()
	if len(gws) != 3 || gws["gw00"] != 3 {
		t.Errorf("gateways = %v", gws)
	}
	empty := &Motif{}
	if empty.RepeatShare() != 0 {
		t.Error("empty motif repeat share should be 0")
	}
}

func TestMeanProfile(t *testing.T) {
	m := &Motif{}
	m.Members = append(m.Members,
		inst("a", 0, []float64{0, 10, 20}),
		inst("b", 1, []float64{0, 100, 200}),
	)
	prof := m.MeanProfile()
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(prof[i]-want[i]) > 1e-12 {
			t.Errorf("profile[%d] = %g, want %g", i, prof[i], want[i])
		}
	}
	// All-zero member is skipped, not divided by zero.
	m.Members = append(m.Members, inst("c", 2, []float64{0, 0, 0}))
	prof2 := m.MeanProfile()
	if math.IsNaN(prof2[1]) {
		t.Error("zero member corrupted the profile")
	}
}

func TestOfInterestAndPerGatewayAndHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var insts []Instance
	for d := 0; d < 9; d++ {
		insts = append(insts, inst(fmt.Sprintf("gw%02d", d%2), d, eveningShape(rng, 0.05)))
	}
	for d := 9; d < 12; d++ {
		insts = append(insts, inst("gw02", d, morningShape(rng, 0.05)))
	}
	motifs := Default.Mine(insts)
	if len(OfInterest(motifs, 5)) != 1 {
		t.Errorf("motifs of interest = %d, want 1", len(OfInterest(motifs, 5)))
	}
	per := PerGateway(motifs)
	if per["gw00"] != 1 || per["gw02"] != 1 {
		t.Errorf("per gateway = %v", per)
	}
	hist := SupportHistogram(motifs)
	if len(hist) != 2 || hist[0] != 9 || hist[1] != 3 {
		t.Errorf("support histogram = %v", hist)
	}
}

func TestMinSupportConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	insts := []Instance{
		inst("a", 0, eveningShape(rng, 0.02)),
		inst("a", 1, eveningShape(rng, 0.02)),
		inst("b", 2, morningShape(rng, 0.02)),
	}
	// Default drops the singleton.
	if got := Default.Mine(insts); len(got) != 1 {
		t.Errorf("default: %d motifs, want 1", len(got))
	}
	// MinSupport 1 keeps it.
	keepAll := Miner{MinSupport: 1}
	if got := keepAll.Mine(insts); len(got) != 2 {
		t.Errorf("min-support 1: %d motifs, want 2", len(got))
	}
}

func TestClassifyWeekly(t *testing.T) {
	mk := func(dayLoads [7]float64) []float64 {
		prof := make([]float64, 21)
		for d, load := range dayLoads {
			for b := 0; b < 3; b++ {
				prof[d*3+b] = load
			}
		}
		return prof
	}
	if got := ClassifyWeekly(mk([7]float64{1, 1, 1, 1, 1, 8, 8})); got != WeeklyHeavyWeekend {
		t.Errorf("weekend profile = %q", got)
	}
	if got := ClassifyWeekly(mk([7]float64{5, 5, 5, 5, 5, 0.2, 0.2})); got != WeeklyWorkdays {
		t.Errorf("workday profile = %q", got)
	}
	if got := ClassifyWeekly(mk([7]float64{1, 1, 1, 1, 1, 1, 1})); got != WeeklyEveryday {
		t.Errorf("uniform profile = %q", got)
	}
	if got := ClassifyWeekly([]float64{1, 2, 3}); got != WeeklyOther {
		t.Errorf("bad length = %q", got)
	}
	if got := ClassifyWeekly(make([]float64, 21)); got != WeeklyOther {
		t.Errorf("all-zero = %q", got)
	}
}

func TestClassifyDaily(t *testing.T) {
	cases := []struct {
		prof []float64
		want DailyClass
	}{
		{[]float64{0, 0, 0, 0, 10, 10, 1, 0}, DailyAfternoon},
		{[]float64{2, 0, 0, 0, 0, 1, 4, 10}, DailyLateEvening},
		{[]float64{0, 0, 6, 4, 0.5, 0.5, 6, 5}, DailyMorningEvening},
		{[]float64{1, 1, 3, 3, 3, 3, 3, 2}, DailyAllDay},
		{[]float64{10, 10, 0, 0, 0, 0, 0, 0}, DailyOther}, // pure night
	}
	for i, tc := range cases {
		if got := ClassifyDaily(tc.prof); got != tc.want {
			t.Errorf("case %d: got %q, want %q", i, got, tc.want)
		}
	}
	if ClassifyDaily([]float64{1}) != DailyOther {
		t.Error("bad length should be other")
	}
}
