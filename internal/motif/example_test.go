package motif_test

import (
	"fmt"
	"time"

	"homesight/internal/motif"
	"homesight/internal/timeseries"
)

// Five homes share an evening pattern on different days; two windows are
// noise. The miner groups the evenings into one motif and discards the
// unrepeated windows.
func ExampleMiner_Mine() {
	mon := time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)
	day := func(gw string, d int, vals []float64) motif.Instance {
		return motif.Instance{
			GatewayID: gw,
			Window:    timeseries.Window{Start: mon.AddDate(0, 0, d), Values: vals, Ordinal: d},
		}
	}
	evening := []float64{10, 5, 20, 40, 60, 90, 6000, 4500}
	instances := []motif.Instance{
		day("gw01", 0, evening),
		day("gw01", 1, scale(evening, 2)), // same shape, twice the volume
		day("gw02", 2, scale(evening, 0.5)),
		day("gw03", 3, scale(evening, 10)),
		day("gw03", 4, evening),
		day("gw04", 5, []float64{9000, 8000, 50, 20, 10, 5, 0, 0}),    // night owl, once
		day("gw05", 6, []float64{3, 700, 80, 9000, 2, 400, 60, 1000}), // chaos, once
	}
	motifs := motif.Default.Mine(instances)
	for _, m := range motifs {
		fmt.Printf("motif %d: support %d, gateways %d, class %s\n",
			m.ID, m.Support(), len(m.Gateways()), motif.ClassifyDaily(m.MeanProfile()))
	}
	// Output:
	// motif 0: support 5, gateways 3, class late_evening
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}
