// Package motif implements Definition 5 of the paper: a motif is a set of
// calendar-aligned, non-overlapping windows (produced by the mapping W over
// one or many gateways) such that every member is very similar (cor >= φ)
// to at least one other member and reasonably similar (cor >= ¾φ) to all of
// them. Motifs whose members are mutually similar above the merge threshold
// are combined. Support is the number of member windows.
package motif

import (
	"math"
	"sort"

	"homesight/internal/corrsim"
	"homesight/internal/timeseries"
)

// DefaultPhi is the paper's individual-similarity threshold (0.8).
const DefaultPhi = 0.8

// DefaultGroupFraction is the paper's group-similarity fraction (3/4,
// giving 0.6 at φ = 0.8).
const DefaultGroupFraction = 0.75

// DefaultMergeThreshold is the cross-motif combination threshold (0.6).
const DefaultMergeThreshold = 0.6

// Instance is one candidate window: a period of one gateway's traffic.
type Instance struct {
	// GatewayID identifies the gateway the window came from.
	GatewayID string
	// Window is the aggregated traffic window (8h bins for weekly motifs,
	// 3h bins for daily motifs in the paper's best configuration).
	Window timeseries.Window
}

// Motif is a discovered motif: a set of mutually similar instances.
type Motif struct {
	// ID is a stable index assigned by the miner (by discovery order).
	ID int
	// Members are the instances, in insertion order.
	Members []Instance
}

// Support is the number of member windows (the paper's k).
func (m *Motif) Support() int { return len(m.Members) }

// Gateways returns the distinct gateway IDs contributing to the motif.
func (m *Motif) Gateways() map[string]int {
	out := make(map[string]int)
	for _, inst := range m.Members {
		out[inst.GatewayID]++
	}
	return out
}

// RepeatShare is the fraction of members coming from gateways that
// contribute more than one member — the "% occur within the same gateways"
// annotation of Figs. 11 and 14.
func (m *Motif) RepeatShare() float64 {
	if len(m.Members) == 0 {
		return 0
	}
	byGW := m.Gateways()
	repeat := 0
	for _, inst := range m.Members {
		if byGW[inst.GatewayID] > 1 {
			repeat++
		}
	}
	return float64(repeat) / float64(len(m.Members))
}

// MeanProfile returns the member-wise mean of max-normalized windows: each
// member is scaled to peak 1 before averaging, so the profile captures the
// shared shape rather than absolute volume.
func (m *Motif) MeanProfile() []float64 {
	if len(m.Members) == 0 {
		return nil
	}
	points := len(m.Members[0].Window.Values)
	prof := make([]float64, points)
	counted := 0
	for _, inst := range m.Members {
		vals := inst.Window.Values
		if len(vals) != points {
			continue
		}
		peak := 0.0
		for _, v := range vals {
			if !math.IsNaN(v) && v > peak {
				peak = v
			}
		}
		if peak == 0 {
			continue
		}
		for i, v := range vals {
			if !math.IsNaN(v) {
				prof[i] += v / peak
			}
		}
		counted++
	}
	if counted == 0 {
		return prof
	}
	for i := range prof {
		prof[i] /= float64(counted)
	}
	return prof
}

// Miner discovers motifs per Definition 5.
type Miner struct {
	// Measure is the similarity measure (zero value = α 0.05).
	Measure corrsim.Measure
	// Phi is the individual-similarity threshold (0 → 0.8).
	Phi float64
	// GroupFraction scales Phi into the group threshold (0 → 3/4).
	GroupFraction float64
	// MergeThreshold combines motifs whose cross-pairs all exceed it
	// (0 → 0.6).
	MergeThreshold float64
	// MinSupport drops motifs with fewer members from the result (0 → 2:
	// an unrepeated window is not a recurring pattern).
	MinSupport int
}

// Default is the paper's miner: φ = 0.8, group 0.6, merge 0.6.
var Default = Miner{}

func (mn Miner) phi() float64 {
	if mn.Phi == 0 { //homesight:ignore zero-sentinel — a φ of exactly 0 would admit every pair; zero safely means "default"
		return DefaultPhi
	}
	return mn.Phi
}

func (mn Miner) groupThreshold() float64 {
	f := mn.GroupFraction
	if f == 0 {
		f = DefaultGroupFraction
	}
	return f * mn.phi()
}

func (mn Miner) mergeThreshold() float64 {
	if mn.MergeThreshold == 0 { //homesight:ignore zero-sentinel — a merge bound of 0 would collapse all motifs; zero safely means "default"
		return DefaultMergeThreshold
	}
	return mn.MergeThreshold
}

func (mn Miner) minSupport() int {
	if mn.MinSupport == 0 {
		return 2
	}
	return mn.MinSupport
}

// Mine discovers motifs among the instances. The construction is greedy in
// input order: each window joins the best existing motif it satisfies
// Definition 5 against (individual similarity with at least one member,
// group similarity with all), otherwise it seeds a new candidate. A final
// pass merges motifs whose members are all mutually similar above the merge
// threshold, then drops candidates below MinSupport.
func (mn Miner) Mine(instances []Instance) []*Motif {
	phi := mn.phi()
	group := mn.groupThreshold()

	var motifs []*Motif
	for _, inst := range instances {
		bestIdx := -1
		bestSim := 0.0
		for mi, m := range motifs {
			maxSim, minSim := mn.similarityRange(inst, m)
			if maxSim >= phi && minSim >= group && maxSim > bestSim {
				bestIdx, bestSim = mi, maxSim
			}
		}
		if bestIdx >= 0 {
			motifs[bestIdx].Members = append(motifs[bestIdx].Members, inst)
		} else {
			motifs = append(motifs, &Motif{Members: []Instance{inst}})
		}
	}

	motifs = mn.merge(motifs)

	out := motifs[:0]
	for _, m := range motifs {
		if m.Support() >= mn.minSupport() {
			out = append(out, m)
		}
	}
	// Largest support first, stable; then assign IDs.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Support() > out[j].Support() })
	for i, m := range out {
		m.ID = i
	}
	return out
}

// similarityRange returns the max and min similarity between the instance
// and the motif's members.
func (mn Miner) similarityRange(inst Instance, m *Motif) (maxSim, minSim float64) {
	minSim = 1
	for _, mem := range m.Members {
		s := mn.Measure.Similarity(inst.Window.Values, mem.Window.Values)
		if s > maxSim {
			maxSim = s
		}
		if s < minSim {
			minSim = s
		}
	}
	return maxSim, minSim
}

// merge combines motifs whose cross-member similarities all exceed the
// merge threshold, repeating until a fixed point.
func (mn Miner) merge(motifs []*Motif) []*Motif {
	thr := mn.mergeThreshold()
	for {
		merged := false
	outer:
		for i := 0; i < len(motifs); i++ {
			for j := i + 1; j < len(motifs); j++ {
				if mn.allCrossAbove(motifs[i], motifs[j], thr) {
					motifs[i].Members = append(motifs[i].Members, motifs[j].Members...)
					motifs = append(motifs[:j], motifs[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return motifs
		}
	}
}

// allCrossAbove reports whether every cross pair of the two motifs clears
// the threshold. Single-member "motifs" (unassigned windows) are not worth
// merging — they already failed to join during construction.
func (mn Miner) allCrossAbove(a, b *Motif, thr float64) bool {
	if a.Support() < 2 || b.Support() < 2 {
		return false
	}
	for _, x := range a.Members {
		for _, y := range b.Members {
			if mn.Measure.Similarity(x.Window.Values, y.Window.Values) < thr {
				return false
			}
		}
	}
	return true
}

// OfInterest filters motifs by minimum support — the paper's "motifs of
// interest with high support values".
func OfInterest(motifs []*Motif, minSupport int) []*Motif {
	var out []*Motif
	for _, m := range motifs {
		if m.Support() >= minSupport {
			out = append(out, m)
		}
	}
	return out
}

// PerGateway returns, for each gateway, the number of distinct motifs it
// participates in (Fig. 10).
func PerGateway(motifs []*Motif) map[string]int {
	seen := make(map[string]map[int]bool)
	for _, m := range motifs {
		for _, inst := range m.Members {
			if seen[inst.GatewayID] == nil {
				seen[inst.GatewayID] = make(map[int]bool)
			}
			seen[inst.GatewayID][m.ID] = true
		}
	}
	out := make(map[string]int, len(seen))
	for gw, set := range seen {
		out[gw] = len(set)
	}
	return out
}

// SupportHistogram returns the support values of all motifs, descending
// (the raw material of Fig. 9).
func SupportHistogram(motifs []*Motif) []int {
	out := make([]int, len(motifs))
	for i, m := range motifs {
		out[i] = m.Support()
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
