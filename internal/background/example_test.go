package background_test

import (
	"fmt"
	"math/rand"
	"time"

	"homesight/internal/background"
	"homesight/internal/timeseries"
)

// A tablet chats at ~300 B/min while idle and occasionally streams video.
// The boxplot whisker separates the two regimes; thresholding keeps only
// the active minutes.
func ExampleEstimateTau() {
	rng := rand.New(rand.NewSource(42))
	mon := time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 2000)
	for i := range vals {
		if i%200 < 4 { // a four-minute burst every ~3 hours
			vals[i] = 2e6
		} else {
			vals[i] = 300 * rng.Float64()
		}
	}
	s := timeseries.New(mon, time.Minute, vals)

	tau := background.CapTau(background.EstimateTau(s.Values))
	active := background.ActiveSeries(s, tau)
	fmt.Printf("tau group: %s\n", background.GroupOf(tau))
	fmt.Printf("active minutes: %.1f%%\n", 100*background.ActiveFraction(s, tau))
	fmt.Printf("background removed: %v\n", active.Total() < s.Total())
	// Output:
	// tau group: small
	// active minutes: 2.1%
	// background removed: true
}
