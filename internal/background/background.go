// Package background implements the paper's background-traffic
// characterization (Sec. 6.1): the per-device, per-direction threshold τ
// estimated as the upper whisker of the traffic boxplot, the capped
// τ_back = min(τ, 5000) used to excise background traffic before motif
// discovery, and the small/medium/large τ grouping that correlates with
// device type.
package background

import (
	"math"

	"homesight/internal/stats"
	"homesight/internal/timeseries"
)

// CapBytes is the paper's upper border for background traffic: 5000 bytes
// per minute (< 1 Kbps), consistent with and tighter than the 1 kbps cut
// of earlier work on the same testbed.
const CapBytes = 5000

// LargeBytes is the boundary above which a device's τ is considered
// "large" (the Fig. 4 tail at 40,000 bytes ≈ 5.3 Kbps).
const LargeBytes = 40000

// Group is the τ-based device grouping of Sec. 6.1.
type Group string

// τ groups: small τ <= 5000 < medium τ <= 40000 < large.
const (
	Small  Group = "small"
	Medium Group = "medium"
	Large  Group = "large"
)

// GroupOf classifies a raw (uncapped) τ.
func GroupOf(tau float64) Group {
	switch {
	case tau <= CapBytes:
		return Small
	case tau <= LargeBytes:
		return Medium
	default:
		return Large
	}
}

// EstimateTau returns the background threshold for a device's traffic
// values in one direction: the upper whisker of the Tukey boxplot. The
// whisker works because background chatter owns the bulk of the
// probability mass while active traffic surfaces as outliers (Sec. 4.1).
// It returns 0 for an empty sample.
func EstimateTau(values []float64) float64 {
	obs := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			obs = append(obs, v)
		}
	}
	b, err := stats.NewBoxplot(obs, stats.DefaultWhiskerK)
	if err != nil {
		return 0
	}
	return b.UpperWhisker
}

// CapTau applies the paper's cap: τ_back = min(τ, 5000).
func CapTau(tau float64) float64 { return math.Min(tau, CapBytes) }

// Threshold bundles a device's per-direction background estimates.
type Threshold struct {
	// TauIn and TauOut are the raw whisker estimates per direction.
	TauIn, TauOut float64
}

// EstimateThreshold computes both directional thresholds for a device.
func EstimateThreshold(in, out *timeseries.Series) Threshold {
	return Threshold{
		TauIn:  EstimateTau(in.Values),
		TauOut: EstimateTau(out.Values),
	}
}

// Tau returns the device-level threshold used for active-traffic
// extraction: the larger directional whisker, capped at CapBytes.
func (t Threshold) Tau() float64 {
	return CapTau(math.Max(t.TauIn, t.TauOut))
}

// ActiveSeries returns the series with background removed: every value
// strictly below tau becomes zero (missing observations stay missing).
func ActiveSeries(s *timeseries.Series, tau float64) *timeseries.Series {
	return s.Threshold(tau)
}

// ActiveFraction returns the share of observed minutes that carry active
// (above-threshold) traffic — a quick burstiness diagnostic.
func ActiveFraction(s *timeseries.Series, tau float64) float64 {
	active, observed := 0, 0
	for _, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		observed++
		if v >= tau {
			active++
		}
	}
	if observed == 0 {
		return 0
	}
	return float64(active) / float64(observed)
}
