package background

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"homesight/internal/synth"
	"homesight/internal/timeseries"
)

var start = time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)

func TestGroupOf(t *testing.T) {
	cases := []struct {
		tau  float64
		want Group
	}{
		{0, Small}, {5000, Small}, {5001, Medium}, {40000, Medium}, {40001, Large}, {1e6, Large},
	}
	for _, tc := range cases {
		if got := GroupOf(tc.tau); got != tc.want {
			t.Errorf("GroupOf(%g) = %q, want %q", tc.tau, got, tc.want)
		}
	}
}

func TestEstimateTauSeparatesBackgroundFromBursts(t *testing.T) {
	// 95% background around 800 B/min, 5% active bursts of megabytes.
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 5000)
	for i := range vals {
		if rng.Float64() < 0.05 {
			vals[i] = 1e6 + rng.Float64()*1e7
		} else {
			vals[i] = 800 * math.Exp(0.5*rng.NormFloat64())
		}
	}
	tau := EstimateTau(vals)
	if tau < 1000 || tau > 20000 {
		t.Errorf("tau = %g, want a value separating ~800 background from ~1e6 bursts", tau)
	}
	// All bursts must sit above tau.
	for _, v := range vals {
		if v >= 1e6 && v < tau {
			t.Fatalf("burst %g below tau %g", v, tau)
		}
	}
}

func TestEstimateTauEdgeCases(t *testing.T) {
	if got := EstimateTau(nil); got != 0 {
		t.Errorf("empty tau = %g", got)
	}
	nan := math.NaN()
	if got := EstimateTau([]float64{nan, nan}); got != 0 {
		t.Errorf("all-NaN tau = %g", got)
	}
	// Constant traffic: whisker equals the constant.
	if got := EstimateTau([]float64{500, 500, 500}); got != 500 {
		t.Errorf("constant tau = %g, want 500", got)
	}
}

func TestCapTau(t *testing.T) {
	if CapTau(1200) != 1200 || CapTau(99999) != CapBytes {
		t.Error("CapTau must cap at 5000 only from above")
	}
}

func TestThresholdTau(t *testing.T) {
	th := Threshold{TauIn: 3000, TauOut: 800}
	if th.Tau() != 3000 {
		t.Errorf("Tau = %g, want max direction", th.Tau())
	}
	th2 := Threshold{TauIn: 90000, TauOut: 100}
	if th2.Tau() != CapBytes {
		t.Errorf("Tau = %g, want capped at %d", th2.Tau(), CapBytes)
	}
}

func TestActiveSeries(t *testing.T) {
	nan := math.NaN()
	s := timeseries.New(start, time.Minute, []float64{100, 6000, nan, 4999})
	a := ActiveSeries(s, 5000)
	if a.Values[0] != 0 || a.Values[1] != 6000 || a.Values[3] != 0 {
		t.Errorf("active = %v", a.Values)
	}
	if !math.IsNaN(a.Values[2]) {
		t.Error("missing observations must stay missing")
	}
}

func TestActiveFraction(t *testing.T) {
	nan := math.NaN()
	s := timeseries.New(start, time.Minute, []float64{0, 10000, 20000, nan})
	if got := ActiveFraction(s, 5000); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("active fraction = %g, want 2/3", got)
	}
	empty := timeseries.New(start, time.Minute, []float64{nan})
	if ActiveFraction(empty, 5000) != 0 {
		t.Error("empty series fraction should be 0")
	}
}

func TestSyntheticPopulationTauShape(t *testing.T) {
	// Fig. 4 shape on synthetic devices: the majority of devices must have
	// τ below 5000 B/min and only a small tail above 40000.
	cfg := synth.DefaultConfig()
	cfg.Homes = 40
	cfg.Weeks = 2
	d := synth.NewDeployment(cfg)
	small, medium, large, total := 0, 0, 0, 0
	for i := 0; i < d.NumHomes(); i++ {
		for _, dt := range d.Home(i).Traffic() {
			if dt.In.ObservedCount() == 0 {
				continue
			}
			th := EstimateThreshold(dt.In, dt.Out)
			total++
			switch GroupOf(math.Max(th.TauIn, th.TauOut)) {
			case Small:
				small++
			case Medium:
				medium++
			case Large:
				large++
			}
		}
	}
	if total == 0 {
		t.Fatal("no devices")
	}
	if frac := float64(small) / float64(total); frac < 0.55 {
		t.Errorf("small-τ share = %.2f (%d/%d), want the clear majority", frac, small, total)
	}
	if frac := float64(large) / float64(total); frac > 0.10 {
		t.Errorf("large-τ share = %.2f (%d/%d), want a thin tail", frac, large, total)
	}
	if large == 0 {
		t.Error("expected at least one large-τ device in 40 homes")
	}
}
