// Package dataset defines the analysis-facing view of a deployment: per
// gateway, the aggregated traffic plus every device's directional series,
// together with the observation-coverage filters the paper uses to select
// cohorts (gateways with at least one observation per week, or per day),
// and CSV persistence for interoperability.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"homesight/internal/devices"
	"homesight/internal/synth"
	"homesight/internal/timeseries"
)

// DeviceRecord is one device and its directional traffic.
type DeviceRecord struct {
	Device  devices.Device
	In, Out *timeseries.Series
}

// Overall returns the device's total (in + out) series.
func (d DeviceRecord) Overall() *timeseries.Series {
	sum, err := d.In.Add(d.Out)
	if err != nil {
		panic(err) // same grid by construction
	}
	return sum
}

// Gateway is the analysis view of one home.
type Gateway struct {
	ID string
	// Overall is the aggregated gateway traffic (Sec. 3).
	Overall *timeseries.Series
	// Devices are the per-device records.
	Devices []DeviceRecord
	// Residents is the surveyed number of residents; 0 when not surveyed.
	Residents int
}

// FromSynthHome converts a generated home into a Gateway, truncated to the
// first `weeks` weeks (0 = full campaign). surveyed controls whether the
// ground-truth resident count is exposed, mirroring the paper's 49-home
// survey subset.
func FromSynthHome(h *synth.Home, weeks int, surveyed bool) *Gateway {
	cfg := timeRange(h, weeks)
	g := &Gateway{ID: h.ID}
	g.Overall = h.Overall().Between(cfg.from, cfg.to)
	for _, dt := range h.Traffic() {
		g.Devices = append(g.Devices, DeviceRecord{
			Device: dt.Spec.Device,
			In:     dt.In.Between(cfg.from, cfg.to),
			Out:    dt.Out.Between(cfg.from, cfg.to),
		})
	}
	if surveyed {
		g.Residents = h.Residents
	}
	return g
}

type span struct{ from, to time.Time }

func timeRange(h *synth.Home, weeks int) span {
	start := h.Overall().Start
	if weeks <= 0 {
		return span{start, h.Overall().End()}
	}
	return span{start, start.Add(time.Duration(weeks) * timeseries.Week)}
}

// HasWeeklyCoverage reports whether the series has at least one observation
// in every one of the first `weeks` calendar weeks — the cohort filter of
// Secs. 6.2 and 7.1.1.
func HasWeeklyCoverage(s *timeseries.Series, weeks int) bool {
	return hasCoverage(s, weeks, timeseries.Week)
}

// HasDailyCoverage reports whether the series has at least one observation
// in every one of the first `days` calendar days — the cohort filter of
// Sec. 7.1.2.
func HasDailyCoverage(s *timeseries.Series, days int) bool {
	return hasCoverage(s, days, timeseries.Day)
}

func hasCoverage(s *timeseries.Series, periods int, period time.Duration) bool {
	per := int(period / s.Step)
	for p := 0; p < periods; p++ {
		seen := false
		for i := p * per; i < (p+1)*per; i++ {
			if i >= s.Len() {
				return false
			}
			if !math.IsNaN(s.Values[i]) {
				seen = true
				break
			}
		}
		if !seen {
			return false
		}
	}
	return true
}

// csvHeader is the on-disk schema: one row per device-minute.
var csvHeader = []string{"minute", "timestamp", "mac", "name", "type", "in_bytes", "out_bytes"}

// WriteCSV serializes a gateway's device traffic as CSV. Missing
// observations are written as empty fields.
func WriteCSV(w io.Writer, g *Gateway) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, dr := range g.Devices {
		for m := 0; m < dr.In.Len(); m++ {
			iv, ov := dr.In.Values[m], dr.Out.Values[m]
			if math.IsNaN(iv) && math.IsNaN(ov) {
				continue // disconnected: no report row, like the real feed
			}
			row := []string{
				strconv.Itoa(m),
				dr.In.TimeAt(m).Format(time.RFC3339),
				dr.Device.MAC,
				dr.Device.Name,
				string(dr.Device.Inferred),
				formatBytes(iv),
				formatBytes(ov),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatBytes(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Row is one device-minute observation as serialized by WriteCSV. In and
// Out are NaN when the corresponding field is empty (unobserved).
type Row struct {
	Minute    int
	MAC, Name string
	Type      devices.Type
	In, Out   float64
}

// ScanCSV streams WriteCSV output row by row into fn without
// materializing any series — the constant-memory primitive under
// ReadCSV, usable directly when a consumer only needs a single pass
// (totals, filters, format conversion). n bounds the minute index; a
// row at or past it is rejected. An error from fn aborts the scan.
//
// Rows with an empty type column — the homestore `export` format, whose
// wire reports carry only MAC and name — get their type re-inferred
// with devices.Classify, so both cmd/homesim and cmd/homestore exports
// parse into identical records.
func ScanCSV(r io.Reader, n int, fn func(Row) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("dataset: unexpected header %v", header)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		var row Row
		m, err := strconv.Atoi(rec[0])
		if err != nil || m < 0 || m >= n {
			return fmt.Errorf("dataset: bad minute index %q", rec[0])
		}
		row.Minute = m
		row.MAC, row.Name = rec[2], rec[3]
		if rec[4] == "" {
			row.Type = devices.Classify(row.MAC, row.Name)
		} else {
			row.Type = devices.Type(rec[4])
		}
		if row.In, err = parseBytes(rec[5]); err != nil {
			return err
		}
		if row.Out, err = parseBytes(rec[6]); err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// ReadCSV reconstructs a gateway from WriteCSV output. The id is not part
// of the CSV and must be supplied; n is the expected series length in
// minutes (rows beyond it are rejected).
func ReadCSV(r io.Reader, id string, start time.Time, n int) (*Gateway, error) {
	g := &Gateway{ID: id}
	byMAC := make(map[string]int)
	err := ScanCSV(r, n, func(row Row) error {
		idx, ok := byMAC[row.MAC]
		if !ok {
			idx = len(g.Devices)
			byMAC[row.MAC] = idx
			g.Devices = append(g.Devices, DeviceRecord{
				Device: devices.Device{MAC: row.MAC, Name: row.Name, Inferred: row.Type},
				In:     nanSeries(start, n),
				Out:    nanSeries(start, n),
			})
		}
		dr := g.Devices[idx]
		dr.In.Values[row.Minute] = row.In
		dr.Out.Values[row.Minute] = row.Out
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.Overall = rebuildOverall(g, start, n)
	return g, nil
}

func parseBytes(s string) (float64, error) {
	if s == "" {
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func nanSeries(start time.Time, n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.NaN()
	}
	return timeseries.New(start, time.Minute, vals)
}

// rebuildOverall recomputes the aggregate from the device records.
func rebuildOverall(g *Gateway, start time.Time, n int) *timeseries.Series {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for _, dr := range g.Devices {
		for m := 0; m < n; m++ {
			iv, ov := dr.In.Values[m], dr.Out.Values[m]
			if math.IsNaN(iv) && math.IsNaN(ov) {
				continue
			}
			// A half-observed row (one direction empty) still counts the
			// observed direction instead of poisoning the minute with NaN.
			if math.IsNaN(vals[m]) {
				vals[m] = 0
			}
			if !math.IsNaN(iv) {
				vals[m] += iv
			}
			if !math.IsNaN(ov) {
				vals[m] += ov
			}
		}
	}
	return timeseries.New(start, time.Minute, vals)
}
