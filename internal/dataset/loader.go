package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Manifest is the deployment-level metadata written by cmd/homesim next to
// the per-gateway CSVs.
type Manifest struct {
	Config struct {
		Seed  int64     `json:"Seed"`
		Homes int       `json:"Homes"`
		Start time.Time `json:"Start"`
		Weeks int       `json:"Weeks"`
	} `json:"config"`
	Homes []ManifestHome `json:"homes"`
}

// ManifestHome is one home's ground-truth record.
type ManifestHome struct {
	ID          string `json:"id"`
	Archetype   string `json:"archetype"`
	Residents   int    `json:"residents"`
	Reliability string `json:"reliability"`
	Fiber       bool   `json:"fiber"`
	Devices     int    `json:"devices"`
}

// LoadDir reads a deployment exported by cmd/homesim or `homestore
// export`: deployment.json plus one <id>.csv per gateway. It returns
// the gateways in manifest order. For deployments too large to hold in
// memory at once, use ForEachGateway instead.
func LoadDir(dir string) (*Manifest, []*Gateway, error) {
	var gateways []*Gateway
	man, err := ForEachGateway(dir, func(_ ManifestHome, g *Gateway) error {
		gateways = append(gateways, g)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return man, gateways, nil
}

// ForEachGateway streams a deployment one gateway at a time, in manifest
// order: fn receives each manifest home together with its fully loaded
// Gateway, and nothing else is retained between calls — memory stays
// bounded by the largest single gateway, however many homes the export
// holds. An error from fn aborts the walk.
func ForEachGateway(dir string, fn func(mh ManifestHome, g *Gateway) error) (*Manifest, error) {
	man, err := LoadManifest(filepath.Join(dir, "deployment.json"))
	if err != nil {
		return nil, err
	}
	minutes := man.Config.Weeks * 7 * 24 * 60
	for _, mh := range man.Homes {
		g, err := LoadGatewayCSV(filepath.Join(dir, mh.ID+".csv"), mh.ID, man.Config.Start, minutes)
		if err != nil {
			return nil, fmt.Errorf("dataset: loading %s: %w", mh.ID, err)
		}
		g.Residents = mh.Residents
		if err := fn(mh, g); err != nil {
			return nil, err
		}
	}
	return man, nil
}

// LoadManifest reads and validates a deployment manifest.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() //homesight:ignore unchecked-close — read-only
	var man Manifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return nil, fmt.Errorf("dataset: parsing manifest: %w", err)
	}
	if man.Config.Weeks <= 0 || man.Config.Start.IsZero() {
		return nil, fmt.Errorf("dataset: manifest missing campaign configuration")
	}
	if len(man.Homes) == 0 {
		return nil, fmt.Errorf("dataset: manifest lists no homes")
	}
	return &man, nil
}

// LoadGatewayCSV reads one gateway's CSV export.
func LoadGatewayCSV(path, id string, start time.Time, minutes int) (*Gateway, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() //homesight:ignore unchecked-close — read-only
	return ReadCSV(f, id, start, minutes)
}

// ListGatewayIDs returns the gateway IDs present in a directory (by .csv
// files), sorted, without loading any traffic. Useful for partial loads.
func ListGatewayIDs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".csv") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".csv"))
	}
	sort.Strings(ids)
	return ids, nil
}
