package dataset

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"homesight/internal/devices"
	"homesight/internal/synth"
	"homesight/internal/timeseries"
)

var mon = time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)

func smallHome(t *testing.T) (*synth.Home, synth.Config) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Homes = 5
	cfg.Weeks = 2
	return synth.NewDeployment(cfg).Home(1), cfg
}

func TestFromSynthHome(t *testing.T) {
	h, cfg := smallHome(t)
	g := FromSynthHome(h, 1, true)
	if g.ID != h.ID {
		t.Errorf("id = %q", g.ID)
	}
	wantLen := 7 * 24 * 60
	if g.Overall.Len() != wantLen {
		t.Errorf("overall len = %d, want %d (1 week)", g.Overall.Len(), wantLen)
	}
	if len(g.Devices) != len(h.Devices) {
		t.Errorf("devices = %d, want %d", len(g.Devices), len(h.Devices))
	}
	if g.Residents != h.Residents {
		t.Errorf("residents = %d, want %d (surveyed)", g.Residents, h.Residents)
	}
	// Unsurveyed homes hide the count.
	if FromSynthHome(h, 1, false).Residents != 0 {
		t.Error("unsurveyed home leaked resident count")
	}
	// Full campaign when weeks = 0.
	if full := FromSynthHome(h, 0, false); full.Overall.Len() != cfg.Minutes() {
		t.Errorf("full len = %d, want %d", full.Overall.Len(), cfg.Minutes())
	}
}

func TestCoverageFilters(t *testing.T) {
	n := 14 * 24 * 60
	vals := make([]float64, n)
	s := timeseries.New(mon, time.Minute, vals)
	if !HasWeeklyCoverage(s, 2) || !HasDailyCoverage(s, 14) {
		t.Error("fully observed series should pass both filters")
	}
	// Blank out day 3 entirely.
	for m := 3 * 24 * 60; m < 4*24*60; m++ {
		vals[m] = math.NaN()
	}
	if HasDailyCoverage(s, 14) {
		t.Error("missing day must fail daily coverage")
	}
	if !HasWeeklyCoverage(s, 2) {
		t.Error("missing day must not fail weekly coverage")
	}
	// Blank the whole second week.
	for m := 7 * 24 * 60; m < n; m++ {
		vals[m] = math.NaN()
	}
	if HasWeeklyCoverage(s, 2) {
		t.Error("missing week must fail weekly coverage")
	}
	// Requesting more periods than the series holds fails.
	if HasWeeklyCoverage(s, 3) {
		t.Error("coverage beyond the series extent must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	h, _ := smallHome(t)
	g := FromSynthHome(h, 1, false)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	n := g.Overall.Len()
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), g.ID, mon, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Devices) == 0 {
		t.Fatal("no devices read back")
	}
	// Index devices by MAC for comparison.
	byMAC := make(map[string]DeviceRecord)
	for _, dr := range got.Devices {
		byMAC[dr.Device.MAC] = dr
	}
	for _, want := range g.Devices {
		rt, ok := byMAC[want.Device.MAC]
		if !ok {
			// Devices with zero observed minutes produce no rows.
			if want.In.ObservedCount() > 0 {
				t.Fatalf("device %s lost in round trip", want.Device.MAC)
			}
			continue
		}
		if rt.Device.Inferred != want.Device.Inferred || rt.Device.Name != want.Device.Name {
			t.Errorf("device identity changed: %+v vs %+v", rt.Device, want.Device)
		}
		for m := 0; m < n; m++ {
			w, g2 := want.In.Values[m], rt.In.Values[m]
			if math.IsNaN(w) != math.IsNaN(g2) || (!math.IsNaN(w) && w != g2) {
				t.Fatalf("mac %s minute %d: %g vs %g", want.Device.MAC, m, w, g2)
			}
		}
	}
	// Rebuilt overall must match the original where defined.
	for m := 0; m < n; m++ {
		w, g2 := g.Overall.Values[m], got.Overall.Values[m]
		if math.IsNaN(w) || math.IsNaN(g2) {
			continue
		}
		if math.Abs(w-g2) > 1e-9 {
			t.Fatalf("overall minute %d: %g vs %g", m, w, g2)
		}
	}
}

// TestScanCSVStreams pins the streaming contract: rows arrive in file
// order without materializing series, fn errors abort the scan, and an
// empty type column is re-inferred with devices.Classify — the
// homestore export format, whose wire reports never carried a type.
func TestScanCSVStreams(t *testing.T) {
	csv := "minute,timestamp,mac,name,type,in_bytes,out_bytes\n" +
		"0,x,aa:bb,Chromecast,,5,1\n" +
		"2,x,aa:bb,Chromecast,,7,\n" +
		"3,x,cc:dd,thing,tv,2,2\n"
	var rows []Row
	if err := ScanCSV(strings.NewReader(csv), 10, func(r Row) error {
		rows = append(rows, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("scanned %d rows, want 3", len(rows))
	}
	if rows[0].Minute != 0 || rows[1].Minute != 2 || rows[2].Minute != 3 {
		t.Fatalf("minutes out of order: %+v", rows)
	}
	if want := devices.Classify("aa:bb", "Chromecast"); rows[0].Type != want {
		t.Errorf("empty type column: got %q, want Classify result %q", rows[0].Type, want)
	}
	if rows[2].Type != devices.Type("tv") {
		t.Errorf("explicit type column overridden: got %q", rows[2].Type)
	}
	if !math.IsNaN(rows[1].Out) || rows[1].In != 7 {
		t.Errorf("half-observed row parsed as %+v", rows[1])
	}
	// fn errors abort the scan.
	n := 0
	stop := fmt.Errorf("stop")
	err := ScanCSV(strings.NewReader(csv), 10, func(Row) error {
		n++
		return stop
	})
	if err != stop || n != 1 {
		t.Errorf("fn error: err=%v after %d rows, want stop after 1", err, n)
	}
}

// TestRebuildOverallHalfObserved: a minute where only one direction was
// observed contributes the observed direction instead of going NaN.
func TestRebuildOverallHalfObserved(t *testing.T) {
	csv := "minute,timestamp,mac,name,type,in_bytes,out_bytes\n" +
		"0,x,aa:bb,d,tv,5,\n"
	g, err := ReadCSV(strings.NewReader(csv), "gw", mon, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Overall.Values[0] != 5 {
		t.Errorf("overall[0] = %v, want 5", g.Overall.Values[0])
	}
	if !math.IsNaN(g.Overall.Values[1]) {
		t.Errorf("overall[1] = %v, want NaN", g.Overall.Values[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "gw", mon, 10); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), "gw", mon, 10); err == nil {
		t.Error("bad header should fail")
	}
	bad := "minute,timestamp,mac,name,type,in_bytes,out_bytes\n999,x,m,n,t,1,1\n"
	if _, err := ReadCSV(strings.NewReader(bad), "gw", mon, 10); err == nil {
		t.Error("out-of-range minute should fail")
	}
	badBytes := "minute,timestamp,mac,name,type,in_bytes,out_bytes\n1,x,m,n,t,notanumber,1\n"
	if _, err := ReadCSV(strings.NewReader(badBytes), "gw", mon, 10); err == nil {
		t.Error("malformed bytes should fail")
	}
}

func TestDeviceRecordOverall(t *testing.T) {
	in := timeseries.New(mon, time.Minute, []float64{1, 2})
	out := timeseries.New(mon, time.Minute, []float64{10, 20})
	dr := DeviceRecord{In: in, Out: out}
	o := dr.Overall()
	if o.Values[0] != 11 || o.Values[1] != 22 {
		t.Errorf("overall = %v", o.Values)
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	// Export a small deployment the way cmd/homesim does, then load it back.
	dir := t.TempDir()
	cfg := synth.DefaultConfig()
	cfg.Homes = 3
	cfg.Weeks = 1
	dep := synth.NewDeployment(cfg)

	man := map[string]interface{}{
		"config": map[string]interface{}{
			"Seed": cfg.Seed, "Homes": cfg.Homes, "Start": cfg.Start, "Weeks": cfg.Weeks,
		},
	}
	var homes []map[string]interface{}
	for i := 0; i < dep.NumHomes(); i++ {
		h := dep.Home(i)
		g := FromSynthHome(h, 0, false)
		f, err := os.Create(filepath.Join(dir, h.ID+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(f, g); err != nil {
			t.Fatal(err)
		}
		f.Close()
		homes = append(homes, map[string]interface{}{
			"id": h.ID, "archetype": string(h.Archetype), "residents": h.Residents,
			"reliability": string(h.Reliability), "fiber": h.Fiber, "devices": len(h.Devices),
		})
	}
	man["homes"] = homes
	mf, err := os.Create(filepath.Join(dir, "deployment.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(mf).Encode(man); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	loadedMan, gateways, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loadedMan.Config.Homes != 3 || len(gateways) != 3 {
		t.Fatalf("loaded %d gateways, manifest says %d", len(gateways), loadedMan.Config.Homes)
	}
	// Residents flow from the manifest.
	if gateways[0].Residents != dep.Home(0).Residents {
		t.Errorf("residents = %d", gateways[0].Residents)
	}
	// Traffic round-trips (spot check against the generator).
	want := dep.Home(1).Overall()
	got := gateways[1].Overall
	match := 0
	for m := 0; m < got.Len(); m++ {
		w, g := want.Values[m], got.Values[m]
		if !math.IsNaN(w) && !math.IsNaN(g) {
			if math.Abs(w-g) > 1e-9 {
				t.Fatalf("minute %d: %g vs %g", m, g, w)
			}
			match++
		}
	}
	if match == 0 {
		t.Fatal("no comparable minutes")
	}

	ids, err := ListGatewayIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "gw000" {
		t.Errorf("ids = %v", ids)
	}

	// ForEachGateway streams the same homes in manifest order, and fn
	// errors abort the walk.
	var seen []string
	if _, err := ForEachGateway(dir, func(mh ManifestHome, g *Gateway) error {
		if mh.ID != g.ID {
			t.Fatalf("manifest home %s paired with gateway %s", mh.ID, g.ID)
		}
		seen = append(seen, g.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != "gw000" || seen[2] != "gw002" {
		t.Errorf("streamed %v", seen)
	}
	stop := fmt.Errorf("stop")
	if _, err := ForEachGateway(dir, func(ManifestHome, *Gateway) error { return stop }); err != stop {
		t.Errorf("fn error not propagated: %v", err)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("missing manifest should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deployment.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadDir(dir); err == nil {
		t.Error("empty manifest should fail")
	}
}
