package runner

import (
	"context"
	"strings"

	"homesight/internal/experiments"
)

// StandardExperiments builds the paper's experiment suite in publication
// order. Each runner renders its own report fragment and, when res is
// non-nil, stores its structured result in the corresponding Results field
// so a full run can evaluate the cross-experiment shape checks. Every
// experiment writes a distinct field, so concurrent execution is race-free.
func StandardExperiments(res *experiments.Results) []Experiment {
	if res == nil {
		res = &experiments.Results{}
	}
	return []Experiment{
		New("fig1", "typical gateway distribution anatomy",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig01TypicalGateway(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig01 = r
				return Result{Text: r.String()}, nil
			}),
		New("inout", "incoming/outgoing correlation",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabInOutCorrelation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.InOut = r
				return Result{Text: r.String()}, nil
			}),
		New("fig2", "autocorrelation and cross-correlation",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig02ACFCCF(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig02 = r
				return Result{Text: r.String()}, nil
			}),
		// The stationarity tests own most of the suite's runtime, so the
		// engine schedules one shard per examined gateway; each shard
		// fills the Env's stationarity memo and the assembly reduces the
		// warm entries in gateway order.
		NewSharded("unitroot", "KPSS/ADF/KS stationarity tests",
			func(e *experiments.Env) int { return len(e.StationarityGateways()) },
			func(ctx context.Context, e *experiments.Env, s int) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				e.Stationarity(e.StationarityGateways()[s])
				return nil
			},
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabStationarityTests(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.UnitRoot = r
				return Result{Text: r.String()}, nil
			}),
		New("devcount", "traffic vs connected-device count",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabDeviceCountCorrelation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.DevCount = r
				return Result{Text: r.String()}, nil
			}),
		New("fig3", "correlation-distance clustering",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig03Clustering(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig03 = r
				return Result{Text: r.String()}, nil
			}),
		New("fig4", "background threshold distribution",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig04BackgroundTau(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig04 = r
				return Result{Text: r.String()}, nil
			}),
		New("heuristic", "device-type heuristic vs survey truth",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabHeuristicValidation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Heuristic = r
				return Result{Text: r.String()}, nil
			}),
		// Dominance detection is the other heavy experiment: one shard per
		// cohort home warms the dominance memo (and, transitively, the
		// device-series and pair-similarity memos it reads through).
		NewSharded("fig5", "dominant devices and types",
			func(e *experiments.Env) int { return len(e.WeeklyCohortIndexes()) },
			func(ctx context.Context, e *experiments.Env, s int) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				e.Dominance(e.WeeklyCohortIndexes()[s])
				return nil
			},
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig05DominantDevices(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig05 = r
				return Result{Text: r.String()}, nil
			}),
		New("agreement", "dominance notion agreement",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabDominanceAgreement(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Agreement = r
				return Result{Text: r.String()}, nil
			}),
		New("residents", "dominants vs residents survey",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabResidentsCorrelation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Residents = r
				return Result{Text: r.String()}, nil
			}),
		New("ablation", "similarity measure variant ablation",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabSimilarityAblation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Ablation = r
				return Result{Text: r.String()}, nil
			}),
		New("fig6", "weekly aggregation curves",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig06WeeklyAggregation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig06 = r
				return Result{Text: r.String()}, nil
			}),
		New("fig7", "stationary gateways per granularity",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig07StationaryGateways(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig07 = r
				return Result{Text: r.String()}, nil
			}),
		New("fig8", "daily aggregation curves",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.Fig08DailyAggregation(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Fig08 = r
				return Result{Text: r.String()}, nil
			}),
		New("stationary", "stationary share with/without background",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				r, err := experiments.TabStationaryShare(ctx, e)
				if err != nil {
					return Result{}, err
				}
				res.Share = r
				return Result{Text: r.String()}, nil
			}),
		New("motifs", "weekly and daily motifs (figs 9-16)",
			func(ctx context.Context, e *experiments.Env) (Result, error) {
				return runMotifChain(ctx, e, res)
			}),
	}
}

// runMotifChain chains Figs. 9-16: mining, motifs of interest and per-motif
// dominance for both families. The steps are order-dependent, so they run
// as one experiment; the per-gateway inner loops still fan out through the
// Env's parallelism.
func runMotifChain(ctx context.Context, e *experiments.Env, res *experiments.Results) (Result, error) {
	var b strings.Builder
	var err error

	if res.Weekly, err = experiments.MineWeeklyMotifs(ctx, e); err != nil {
		return Result{}, err
	}
	b.WriteString(res.Weekly.String())
	res.WeeklyOfInterest = experiments.WeeklyMotifsOfInterest(res.Weekly)
	b.WriteString(experiments.RenderProfiles("Fig 11 — weekly motifs of interest", res.WeeklyOfInterest))
	if res.WeeklyDominance, err = experiments.AnalyzeMotifDominance(ctx, e, res.Weekly, res.WeeklyOfInterest); err != nil {
		return Result{}, err
	}
	b.WriteString(experiments.RenderMotifDominance("Fig 12/13 — weekly motifs", res.WeeklyDominance, false))

	if res.Daily, err = experiments.MineDailyMotifs(ctx, e); err != nil {
		return Result{}, err
	}
	b.WriteString(res.Daily.String())
	res.DailyOfInterest = experiments.DailyMotifsOfInterest(res.Daily)
	b.WriteString(experiments.RenderProfiles("Fig 14 — daily motifs of interest", res.DailyOfInterest))
	if res.DailyDominance, err = experiments.AnalyzeMotifDominance(ctx, e, res.Daily, res.DailyOfInterest); err != nil {
		return Result{}, err
	}
	b.WriteString(experiments.RenderMotifDominance("Fig 15/16 — daily motifs", res.DailyDominance, true))

	return Result{Text: b.String()}, nil
}
