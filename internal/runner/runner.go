// Package runner is the parallel experiment engine. It executes registered
// experiments concurrently under a context with per-experiment timeouts,
// shares the heavy intermediates through the experiments.Env caches, and
// emits a structured per-run metrics report (internal/telemetry). Result
// ordering follows registration order regardless of parallelism, and each
// experiment's computation is internally deterministic, so a parallel run's
// output is byte-identical to the sequential one.
//
// The engine is also instrumented live: set Engine.Obs (RunnerMetrics,
// built on internal/obs) to export per-experiment duration histograms,
// panic/timeout counters and worker occupancy on a /metrics endpoint.
// Instrumentation is always on — an engine without an explicit registry
// counts into a private one — and never touches the output path, so
// determinism is unaffected. See OBSERVABILITY.md for the catalog.
package runner

import (
	"context"
	"fmt"

	"homesight/internal/experiments"
)

// Result is an experiment's rendered output.
type Result struct {
	// Text is the report fragment printed under the experiment's header.
	Text string
}

// Experiment is the uniform unit of work the engine schedules: a stable id
// (the -run selector), a one-line doc string and a context-first runner.
// Run must be safe to call concurrently with other experiments sharing the
// same Env — all shared state goes through the Env's race-safe caches.
type Experiment interface {
	ID() string
	Doc() string
	Run(ctx context.Context, e *experiments.Env) (Result, error)
}

// Sharded is the optional decomposition interface for experiments that
// dominate a run's critical path. The engine splits such an experiment
// into Shards(env) independent sub-units (typically one per home),
// schedules every sub-unit on the worker pool alongside other
// experiments, and calls Run only after the last shard returns. Shards
// do their work into the Env's race-safe caches, so the assembling Run
// reduces warm entries in index order — which is what keeps the report
// byte-identical to a sequential run no matter how the pool interleaved
// the shards.
type Sharded interface {
	Experiment
	// Shards returns the number of independent sub-units for this env.
	// Zero means "run unsharded".
	Shards(e *experiments.Env) int
	// RunShard executes sub-unit s. It runs concurrently with other
	// shards and experiments; all shared state must go through the Env.
	RunShard(ctx context.Context, e *experiments.Env, s int) error
}

// funcExperiment adapts a plain function to the Experiment interface.
type funcExperiment struct {
	id, doc string
	run     func(ctx context.Context, e *experiments.Env) (Result, error)
}

func (f funcExperiment) ID() string  { return f.id }
func (f funcExperiment) Doc() string { return f.doc }
func (f funcExperiment) Run(ctx context.Context, e *experiments.Env) (Result, error) {
	return f.run(ctx, e)
}

// New wraps a function as an Experiment.
func New(id, doc string, run func(ctx context.Context, e *experiments.Env) (Result, error)) Experiment {
	return funcExperiment{id: id, doc: doc, run: run}
}

// funcSharded adapts a shard axis plus a per-shard function to Sharded.
type funcSharded struct {
	funcExperiment
	shards   func(e *experiments.Env) int
	runShard func(ctx context.Context, e *experiments.Env, s int) error
}

func (f funcSharded) Shards(e *experiments.Env) int { return f.shards(e) }
func (f funcSharded) RunShard(ctx context.Context, e *experiments.Env, s int) error {
	return f.runShard(ctx, e, s)
}

// NewSharded wraps a function as an Experiment whose work the engine
// decomposes into pool-scheduled sub-units (see Sharded).
func NewSharded(id, doc string,
	shards func(e *experiments.Env) int,
	runShard func(ctx context.Context, e *experiments.Env, s int) error,
	run func(ctx context.Context, e *experiments.Env) (Result, error)) Experiment {
	return funcSharded{
		funcExperiment: funcExperiment{id: id, doc: doc, run: run},
		shards:         shards,
		runShard:       runShard,
	}
}

// Registry holds experiments in registration order — the order the engine
// reports results in, independent of scheduling.
type Registry struct {
	order []Experiment
	byID  map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Experiment)}
}

// Register adds an experiment; duplicate ids are rejected so -run selectors
// stay unambiguous.
func (r *Registry) Register(x Experiment) error {
	id := x.ID()
	if id == "" {
		return fmt.Errorf("runner: experiment with empty id")
	}
	if _, dup := r.byID[id]; dup {
		return fmt.Errorf("runner: duplicate experiment id %q", id)
	}
	r.byID[id] = x
	r.order = append(r.order, x)
	return nil
}

// Experiments returns the registered experiments in registration order.
func (r *Registry) Experiments() []Experiment {
	out := make([]Experiment, len(r.order))
	copy(out, r.order)
	return out
}

// Get looks an experiment up by id.
func (r *Registry) Get(id string) (Experiment, bool) {
	x, ok := r.byID[id]
	return x, ok
}
