package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"homesight/internal/experiments"
	"homesight/internal/telemetry"
)

// Engine executes experiments on a bounded worker pool. The zero value runs
// sequentially with no timeout.
type Engine struct {
	// Parallelism is the worker count; values < 1 mean 1.
	Parallelism int
	// Timeout bounds each experiment's Run; 0 means no per-experiment
	// deadline (the outer ctx still applies).
	Timeout time.Duration
	// Obs receives the engine's registry-backed instruments (durations,
	// panics, timeouts, worker occupancy). nil → a process-private
	// bundle, so instrumentation is always on but exported nowhere.
	Obs *RunnerMetrics
	// Now is the clock used for wall/duration metrics; nil → time.Now.
	// Injectable so reproducibility harnesses can run the engine on a
	// fake clock.
	Now func() time.Time
}

// now reads the engine clock.
func (g *Engine) now() time.Time {
	clock := g.Now
	if clock == nil {
		clock = time.Now
	}
	return clock()
}

// metrics returns the engine's instrument bundle, defaulting privately.
func (g *Engine) metrics() *RunnerMetrics {
	if g.Obs != nil {
		return g.Obs
	}
	return fallbackMetrics()
}

// Report is one experiment's outcome.
type Report struct {
	ID       string
	Result   Result
	Err      error
	Duration time.Duration
}

// Run executes the experiments and returns their reports in input order —
// workers write only their own indexed slot, so scheduling never reorders
// or interleaves output. The returned error joins every per-experiment
// failure (nil when all succeeded); reports are complete either way. env
// may be nil for experiments that don't need one (tests); when set, its
// cache counters are attached to the metrics.
func (g *Engine) Run(ctx context.Context, env *experiments.Env, exps []Experiment) ([]Report, telemetry.RunMetrics, error) {
	start := g.now()
	n := len(exps)
	reports := make([]Report, n)

	p := g.Parallelism
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}

	// Sample the goroutine high-water mark while the pool runs. The sampler
	// is joined before metrics are read, so the measurement is race-free.
	var highWater atomic.Int64
	highWater.Store(int64(runtime.NumGoroutine()))
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if now := int64(runtime.NumGoroutine()); now > highWater.Load() {
					highWater.Store(now)
				}
			}
		}
	}()

	om := g.metrics()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				x := exps[i]
				om.BusyWorkers.Inc()
				t0 := g.now()
				res, err := g.runOne(ctx, env, x)
				d := g.now().Sub(t0)
				om.BusyWorkers.Dec()
				om.Durations.With(x.ID()).Observe(d.Seconds())
				reports[i] = Report{ID: x.ID(), Result: res, Err: err, Duration: d}
			}
		}()
	}
	sent := 0
dispatch:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
			sent++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	close(stop)
	sampler.Wait()

	// Experiments never dispatched (cancelled mid-run) still get a report,
	// so callers can tell skipped from succeeded.
	for i := sent; i < n; i++ {
		reports[i] = Report{ID: exps[i].ID(), Err: ctx.Err()}
	}

	m := telemetry.RunMetrics{
		Parallelism:        p,
		WallSeconds:        g.now().Sub(start).Seconds(),
		GoroutineHighWater: int(highWater.Load()),
	}
	var errs []error
	for _, rep := range reports {
		em := telemetry.ExperimentMetrics{ID: rep.ID, Seconds: rep.Duration.Seconds()}
		if rep.Err != nil {
			em.Err = rep.Err.Error()
			errs = append(errs, fmt.Errorf("%s: %w", rep.ID, rep.Err))
		}
		m.Experiments = append(m.Experiments, em)
	}
	if env != nil {
		m.Caches = env.CacheStats()
	}
	return reports, m, errors.Join(errs...)
}

// runOne executes one experiment under the per-experiment deadline with
// panic containment: a panicking experiment fails its own report instead of
// tearing down the whole run.
func (g *Engine) runOne(ctx context.Context, env *experiments.Env, x Experiment) (res Result, err error) {
	if g.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.Timeout)
		defer cancel()
	}
	om := g.metrics()
	defer func() {
		if p := recover(); p != nil {
			om.Panics.Inc()
			err = fmt.Errorf("runner: experiment %s panicked: %v", x.ID(), p)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			om.Timeouts.Inc()
		}
	}()
	return x.Run(ctx, env)
}
