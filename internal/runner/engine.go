package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"homesight/internal/experiments"
	"homesight/internal/telemetry"
)

// Engine executes experiments on a bounded worker pool. The zero value runs
// sequentially with no timeout.
type Engine struct {
	// Parallelism is the worker count; values < 1 mean 1.
	Parallelism int
	// Timeout bounds each experiment's Run; 0 means no per-experiment
	// deadline (the outer ctx still applies).
	Timeout time.Duration
	// Obs receives the engine's registry-backed instruments (durations,
	// panics, timeouts, worker occupancy). nil → a process-private
	// bundle, so instrumentation is always on but exported nowhere.
	Obs *RunnerMetrics
	// Now is the clock used for wall/duration metrics; nil → time.Now.
	// Injectable so reproducibility harnesses can run the engine on a
	// fake clock.
	Now func() time.Time
	// SkipWarm disables the Env.Warm pre-pass that fills the shared
	// caches before dispatch. Set it when running a subset of the suite
	// (cmd/experiments -run), where warming every cache would cost more
	// than the selected experiments save.
	SkipWarm bool
}

// now reads the engine clock.
func (g *Engine) now() time.Time {
	clock := g.Now
	if clock == nil {
		clock = time.Now
	}
	return clock()
}

// metrics returns the engine's instrument bundle, defaulting privately.
func (g *Engine) metrics() *RunnerMetrics {
	if g.Obs != nil {
		return g.Obs
	}
	return fallbackMetrics()
}

// Report is one experiment's outcome.
type Report struct {
	ID       string
	Result   Result
	Err      error
	Duration time.Duration
}

// Run executes the experiments and returns their reports in input order —
// workers write only their own indexed slot, so scheduling never reorders
// or interleaves output. The returned error joins every per-experiment
// failure (nil when all succeeded); reports are complete either way. env
// may be nil for experiments that don't need one (tests); when set, its
// cache counters are attached to the metrics.
//
// Unless SkipWarm is set, Run first warms the Env's shared caches
// (Env.Warm) so no experiment pays another's first-touch build.
// Experiments implementing Sharded are decomposed into per-home
// sub-units scheduled on the same pool as whole experiments; a sharded
// experiment's Report.Duration is the total compute time of its shards
// plus assembly, not the wall time between first shard and last.
func (g *Engine) Run(ctx context.Context, env *experiments.Env, exps []Experiment) ([]Report, telemetry.RunMetrics, error) {
	start := g.now()
	n := len(exps)
	reports := make([]Report, n)

	if env != nil && !g.SkipWarm {
		// Warm fans across the Env's own worker budget. Its only error is
		// the context's, and a cancelled context makes the dispatch loop
		// below mark every experiment as skipped.
		_ = env.Warm(ctx)
	}

	// Decompose: sharded experiments contribute their sub-units to the
	// work list up front; the assembling Run job is enqueued by whichever
	// worker finishes an experiment's last shard.
	type unit struct {
		exp   int
		shard int // -1 = assemble (the experiment's Run)
	}
	shardsLeft := make([]atomic.Int64, n)
	shardErrs := make([][]error, n)
	shardNanos := make([]atomic.Int64, n)
	var pending []unit
	awaiting := 0
	for i, x := range exps {
		k := 0
		if sx, ok := x.(Sharded); ok && env != nil {
			k = sx.Shards(env)
		}
		if k <= 0 {
			pending = append(pending, unit{exp: i, shard: -1})
			continue
		}
		shardsLeft[i].Store(int64(k))
		shardErrs[i] = make([]error, k)
		awaiting++
		for s := 0; s < k; s++ {
			pending = append(pending, unit{exp: i, shard: s})
		}
	}

	p := g.Parallelism
	if p < 1 {
		p = 1
	}
	if p > len(pending) {
		p = len(pending)
	}

	// Sample the goroutine high-water mark while the pool runs. The sampler
	// is joined before metrics are read, so the measurement is race-free.
	var highWater atomic.Int64
	highWater.Store(int64(runtime.NumGoroutine()))
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if now := int64(runtime.NumGoroutine()); now > highWater.Load() {
					highWater.Store(now)
				}
			}
		}
	}()

	om := g.metrics()
	jobs := make(chan unit)
	// completions carries "experiment i finished its last shard" back to
	// the dispatch loop; capacity n means workers never block on it.
	completions := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				x := exps[u.exp]
				om.BusyWorkers.Inc()
				t0 := g.now()
				if u.shard >= 0 {
					err := g.runShard(ctx, env, x.(Sharded), u.shard)
					d := g.now().Sub(t0)
					om.BusyWorkers.Dec()
					shardErrs[u.exp][u.shard] = err
					shardNanos[u.exp].Add(int64(d))
					if shardsLeft[u.exp].Add(-1) == 0 {
						completions <- u.exp
					}
					continue
				}
				res, err := g.runOne(ctx, env, x)
				d := g.now().Sub(t0) + time.Duration(shardNanos[u.exp].Load())
				om.BusyWorkers.Dec()
				// Shard errors join ahead of the assembly error, in shard
				// order — slot-indexed so the joined text is deterministic.
				if errs := shardErrs[u.exp]; errs != nil {
					err = errors.Join(append(append([]error{}, errs...), err)...)
				}
				om.Durations.With(x.ID()).Observe(d.Seconds())
				reports[u.exp] = Report{ID: x.ID(), Result: res, Err: err, Duration: d}
			}
		}()
	}
	assembled := make([]bool, n) // assembly job dispatched
dispatch:
	for len(pending) > 0 || awaiting > 0 {
		if ctx.Err() != nil {
			break
		}
		// A nil send channel parks the send case while only completions
		// remain outstanding.
		var send chan unit
		var u unit
		if len(pending) > 0 {
			send = jobs
			u = pending[0]
		}
		select {
		case send <- u:
			pending = pending[1:]
			if u.shard < 0 {
				assembled[u.exp] = true
			}
		case i := <-completions:
			pending = append(pending, unit{exp: i, shard: -1})
			awaiting--
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	close(stop)
	sampler.Wait()

	// Experiments whose assembly was never dispatched (cancelled mid-run)
	// still get a report, so callers can tell skipped from succeeded.
	for i := 0; i < n; i++ {
		if !assembled[i] {
			reports[i] = Report{ID: exps[i].ID(), Err: ctx.Err()}
		}
	}

	m := telemetry.RunMetrics{
		Parallelism:        p,
		WallSeconds:        g.now().Sub(start).Seconds(),
		GoroutineHighWater: int(highWater.Load()),
	}
	var errs []error
	for _, rep := range reports {
		em := telemetry.ExperimentMetrics{ID: rep.ID, Seconds: rep.Duration.Seconds()}
		if rep.Err != nil {
			em.Err = rep.Err.Error()
			errs = append(errs, fmt.Errorf("%s: %w", rep.ID, rep.Err))
		}
		m.Experiments = append(m.Experiments, em)
	}
	if env != nil {
		m.Caches = env.CacheStats()
	}
	return reports, m, errors.Join(errs...)
}

// runOne executes one experiment under the per-experiment deadline with
// panic containment: a panicking experiment fails its own report instead of
// tearing down the whole run.
func (g *Engine) runOne(ctx context.Context, env *experiments.Env, x Experiment) (res Result, err error) {
	if g.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.Timeout)
		defer cancel()
	}
	om := g.metrics()
	defer func() {
		if p := recover(); p != nil {
			om.Panics.Inc()
			err = fmt.Errorf("runner: experiment %s panicked: %v", x.ID(), p)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			om.Timeouts.Inc()
		}
	}()
	return x.Run(ctx, env)
}

// runShard executes one sub-unit of a sharded experiment with the same
// deadline and panic containment as runOne: a panicking shard fails its
// experiment's report, not the run — and because the Env memo layer
// clears a panicked build, the experiment's remaining shards and
// assembly still compute real values.
func (g *Engine) runShard(ctx context.Context, env *experiments.Env, x Sharded, s int) (err error) {
	if g.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.Timeout)
		defer cancel()
	}
	om := g.metrics()
	defer func() {
		if p := recover(); p != nil {
			om.Panics.Inc()
			err = fmt.Errorf("runner: experiment %s shard %d panicked: %v", x.ID(), s, p)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			om.Timeouts.Inc()
		}
	}()
	return x.RunShard(ctx, env, s)
}
