package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"homesight/internal/experiments"
	"homesight/internal/obs"
)

// fake builds a test experiment from a bare run function.
func fake(id string, run func(ctx context.Context) (string, error)) Experiment {
	return New(id, "fake "+id, func(ctx context.Context, _ *experiments.Env) (Result, error) {
		text, err := run(ctx)
		return Result{Text: text}, err
	})
}

func TestRegistryDuplicateID(t *testing.T) {
	reg := NewRegistry()
	ok := fake("a", func(context.Context) (string, error) { return "a", nil })
	if err := reg.Register(ok); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := reg.Register(ok); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := reg.Register(fake("", nil)); err == nil {
		t.Fatal("empty id accepted")
	}
	if got := reg.Experiments(); len(got) != 1 || got[0].ID() != "a" {
		t.Fatalf("registry order = %v", got)
	}
	if _, found := reg.Get("a"); !found {
		t.Fatal("Get(a) missed")
	}
}

func TestEngineOrderUnderParallelism(t *testing.T) {
	// Experiments finish in reverse start order (later ones are faster);
	// reports must still come back in registration order.
	ids := []string{"e0", "e1", "e2", "e3", "e4"}
	var exps []Experiment
	var mu sync.Mutex
	running := 0
	peak := 0
	for k, id := range ids {
		delay := time.Duration(len(ids)-k) * 5 * time.Millisecond
		id := id
		exps = append(exps, fake(id, func(ctx context.Context) (string, error) {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
			defer func() {
				mu.Lock()
				running--
				mu.Unlock()
			}()
			time.Sleep(delay)
			return "out:" + id, nil
		}))
	}
	eng := Engine{Parallelism: 4}
	reports, m, err := eng.Run(context.Background(), nil, exps)
	if err != nil {
		t.Fatal(err)
	}
	for k, rep := range reports {
		if rep.ID != ids[k] || rep.Result.Text != "out:"+ids[k] {
			t.Errorf("report %d = %q/%q, want %s", k, rep.ID, rep.Result.Text, ids[k])
		}
		if rep.Err != nil {
			t.Errorf("report %s err = %v", rep.ID, rep.Err)
		}
	}
	mu.Lock()
	gotPeak := peak
	mu.Unlock()
	if gotPeak < 2 {
		t.Errorf("peak concurrency = %d, want >= 2 with 4 workers", gotPeak)
	}
	if m.Parallelism != 4 || len(m.Experiments) != len(ids) || m.WallSeconds <= 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.GoroutineHighWater < 1 {
		t.Errorf("goroutine high water = %d", m.GoroutineHighWater)
	}
}

func TestEngineTimeout(t *testing.T) {
	exps := []Experiment{
		fake("slow", func(ctx context.Context) (string, error) {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(5 * time.Second):
				return "never", nil
			}
		}),
		fake("fast", func(ctx context.Context) (string, error) { return "ok", nil }),
	}
	eng := Engine{Parallelism: 2, Timeout: 20 * time.Millisecond}
	reports, _, err := eng.Run(context.Background(), nil, exps)
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if !errors.Is(reports[0].Err, context.DeadlineExceeded) {
		t.Errorf("slow err = %v, want deadline exceeded", reports[0].Err)
	}
	if reports[1].Err != nil || reports[1].Result.Text != "ok" {
		t.Errorf("fast report = %+v", reports[1])
	}
	if !strings.Contains(err.Error(), "slow") {
		t.Errorf("joined error %q should name the failing experiment", err)
	}
}

func TestEnginePanicContained(t *testing.T) {
	exps := []Experiment{
		fake("boom", func(ctx context.Context) (string, error) { panic("kaput") }),
		fake("fine", func(ctx context.Context) (string, error) { return "ok", nil }),
	}
	eng := Engine{Parallelism: 2}
	reports, _, err := eng.Run(context.Background(), nil, exps)
	if err == nil {
		t.Fatal("panic not reported")
	}
	if reports[0].Err == nil || !strings.Contains(reports[0].Err.Error(), "panicked") {
		t.Errorf("boom err = %v", reports[0].Err)
	}
	if reports[1].Err != nil || reports[1].Result.Text != "ok" {
		t.Errorf("fine report = %+v", reports[1])
	}
}

// TestEngineObsMetrics pins the registry-backed instruments against a
// run with one success, one contained panic and one deadline overrun.
func TestEngineObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	exps := []Experiment{
		fake("ok", func(ctx context.Context) (string, error) { return "ok", nil }),
		fake("boom", func(ctx context.Context) (string, error) { panic("kaput") }),
		fake("slow", func(ctx context.Context) (string, error) {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(5 * time.Second):
				return "never", nil
			}
		}),
	}
	eng := Engine{Parallelism: 2, Timeout: 20 * time.Millisecond, Obs: NewRunnerMetrics(reg)}
	if _, _, err := eng.Run(context.Background(), nil, exps); err == nil {
		t.Fatal("run with a panic and a timeout should error")
	}
	if n := eng.Obs.Panics.Value(); n != 1 {
		t.Errorf("panics = %d, want 1", n)
	}
	if n := eng.Obs.Timeouts.Value(); n != 1 {
		t.Errorf("timeouts = %d, want 1", n)
	}
	for _, id := range []string{"ok", "boom", "slow"} {
		if n := eng.Obs.Durations.With(id).Count(); n != 1 {
			t.Errorf("duration observations for %s = %d, want 1", id, n)
		}
	}
	if v := eng.Obs.BusyWorkers.Value(); v != 0 {
		t.Errorf("busy workers after run = %g, want 0", v)
	}
}

func TestEngineCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	exps := []Experiment{
		fake("a", func(ctx context.Context) (string, error) { ran.Add(1); return "a", nil }),
		fake("b", func(ctx context.Context) (string, error) { ran.Add(1); return "b", nil }),
	}
	eng := Engine{Parallelism: 2}
	reports, _, err := eng.Run(ctx, nil, exps)
	if err == nil {
		t.Fatal("cancelled run should error")
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d experiments ran on a dead context", n)
	}
	for _, rep := range reports {
		if !errors.Is(rep.Err, context.Canceled) {
			t.Errorf("report %s err = %v, want canceled", rep.ID, rep.Err)
		}
	}
}

func TestStandardExperimentsRegistry(t *testing.T) {
	var res experiments.Results
	reg := NewRegistry()
	for _, x := range StandardExperiments(&res) {
		if err := reg.Register(x); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"fig1", "inout", "fig2", "unitroot", "devcount", "fig3", "fig4",
		"heuristic", "fig5", "agreement", "residents", "ablation",
		"fig6", "fig7", "fig8", "stationary", "motifs"}
	got := reg.Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for k, x := range got {
		if x.ID() != want[k] {
			t.Errorf("experiment %d = %s, want %s", k, x.ID(), want[k])
		}
		if x.Doc() == "" {
			t.Errorf("experiment %s has no doc", x.ID())
		}
	}
}

// TestStandardSubsetAgainstEnv runs two cheap standard experiments end to
// end on a tiny deployment, checking that results land both in the reports
// and in the shared Results struct.
func TestStandardSubsetAgainstEnv(t *testing.T) {
	e, err := experiments.NewEnv(
		experiments.WithHomes(8), experiments.WithWeeks(2), experiments.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.Results
	var subset []Experiment
	for _, x := range StandardExperiments(&res) {
		if x.ID() == "inout" || x.ID() == "heuristic" {
			subset = append(subset, x)
		}
	}
	eng := Engine{Parallelism: 2}
	reports, m, err := eng.Run(context.Background(), e, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].ID != "inout" || reports[1].ID != "heuristic" {
		t.Fatalf("reports = %+v", reports)
	}
	if res.InOut.Gateways == 0 || res.Heuristic.Devices == 0 {
		t.Error("results not recorded in the shared struct")
	}
	if reports[0].Result.Text == "" || reports[1].Result.Text == "" {
		t.Error("empty rendered output")
	}
	if len(m.Caches) == 0 {
		t.Error("cache metrics missing despite a live Env")
	}
}
