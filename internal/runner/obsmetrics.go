package runner

import (
	"sync"

	"homesight/internal/obs"
)

// RunnerMetrics is the engine's bundle of registry-backed instruments:
// the live view of a run that RunMetrics (the -metrics JSON report)
// snapshots after the fact. Hand one to Engine.Obs to export a run on a
// shared registry; a nil Engine.Obs falls back to a process-private
// bundle so the counting code path is always on.
type RunnerMetrics struct {
	// Durations carries one homesight_runner_experiment_seconds series
	// per experiment ID.
	Durations *obs.HistogramVec
	// Panics counts experiments that panicked and were contained
	// (homesight_runner_panics_total).
	Panics *obs.Counter
	// Timeouts counts experiments that hit the per-experiment deadline
	// (homesight_runner_timeouts_total).
	Timeouts *obs.Counter
	// BusyWorkers is the number of workers currently inside Experiment.Run
	// (homesight_runner_busy_workers) — occupancy, not pool size.
	BusyWorkers *obs.Gauge
}

// NewRunnerMetrics registers (or re-binds, idempotently) the runner
// family on reg.
func NewRunnerMetrics(reg *obs.Registry) *RunnerMetrics {
	return &RunnerMetrics{
		Durations: reg.HistogramVec("homesight_runner_experiment_seconds",
			"Wall time of one experiment run, seconds.", "experiment", nil),
		Panics: reg.Counter("homesight_runner_panics_total",
			"Experiments that panicked and were contained by the engine."),
		Timeouts: reg.Counter("homesight_runner_timeouts_total",
			"Experiments that exceeded the per-experiment deadline."),
		BusyWorkers: reg.Gauge("homesight_runner_busy_workers",
			"Workers currently executing an experiment."),
	}
}

// fallback is the private always-on bundle behind a nil Engine.Obs.
var (
	fallbackOnce sync.Once
	fallback     *RunnerMetrics
)

func fallbackMetrics() *RunnerMetrics {
	fallbackOnce.Do(func() { fallback = NewRunnerMetrics(obs.NewRegistry()) })
	return fallback
}
