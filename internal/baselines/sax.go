package baselines

import (
	"errors"
	"strings"

	"homesight/internal/stats"
	"homesight/internal/stats/dist"
)

// ErrAlphabet is returned for unusable SAX alphabet sizes.
var ErrAlphabet = errors.New("baselines: alphabet size must be in [2, 26]")

// PAA returns the Piecewise Aggregate Approximation of xs with the given
// number of segments: the mean of each of `segments` equal-length chunks.
func PAA(xs []float64, segments int) []float64 {
	if segments <= 0 || len(xs) == 0 {
		return nil
	}
	if segments > len(xs) {
		segments = len(xs)
	}
	out := make([]float64, segments)
	n := float64(len(xs))
	for s := 0; s < segments; s++ {
		lo := int(float64(s) * n / float64(segments))
		hi := int(float64(s+1) * n / float64(segments))
		if hi <= lo {
			hi = lo + 1
		}
		out[s] = stats.Mean(xs[lo:hi])
	}
	return out
}

// SAX converts a series into a SAX word: z-normalize, PAA, then quantize
// against Gaussian equiprobable breakpoints. This is the representation the
// paper's Related Work shows to be ill-suited to Zipfian traffic data — the
// breakpoints assume normality, so most symbols are wasted near zero.
func SAX(xs []float64, segments, alphabet int) (string, error) {
	if alphabet < 2 || alphabet > 26 {
		return "", ErrAlphabet
	}
	z := stats.ZScores(xs)
	paa := PAA(z, segments)
	breaks := GaussianBreakpoints(alphabet)
	var b strings.Builder
	for _, v := range paa {
		b.WriteByte(byte('a' + symbolIndex(v, breaks)))
	}
	return b.String(), nil
}

// GaussianBreakpoints returns the alphabet-1 breakpoints that divide the
// standard normal into `alphabet` equiprobable regions.
func GaussianBreakpoints(alphabet int) []float64 {
	breaks := make([]float64, alphabet-1)
	for i := 1; i < alphabet; i++ {
		breaks[i-1] = dist.StdNormal.Quantile(float64(i) / float64(alphabet))
	}
	return breaks
}

func symbolIndex(v float64, breaks []float64) int {
	for i, b := range breaks {
		if v < b {
			return i
		}
	}
	return len(breaks)
}

// SymbolHistogram counts how often each SAX symbol appears in a word — the
// diagnostic used to demonstrate the paper's critique: on Zipfian data the
// distribution of symbols is wildly non-uniform even after z-normalization.
func SymbolHistogram(word string, alphabet int) []int {
	counts := make([]int, alphabet)
	for i := 0; i < len(word); i++ {
		idx := int(word[i] - 'a')
		if idx >= 0 && idx < alphabet {
			counts[idx]++
		}
	}
	return counts
}

// SAXMotifs is a simple SAX-bucket motif finder: windows whose SAX words
// are identical are grouped into candidate motifs. It mirrors what
// GrammarViz-style tooling does at fixed window length, and serves as the
// baseline the correlation-based motif discovery is compared against.
func SAXMotifs(windows [][]float64, segments, alphabet int) (map[string][]int, error) {
	out := make(map[string][]int)
	for i, w := range windows {
		word, err := SAX(w, segments, alphabet)
		if err != nil {
			return nil, err
		}
		out[word] = append(out[word], i)
	}
	return out, nil
}
