package baselines

import (
	"errors"
	"math"

	"homesight/internal/stats"
	"homesight/internal/stats/corr"
)

// ErrOrder is returned when the AR order is unusable for the sample.
var ErrOrder = errors.New("baselines: invalid AR order for sample size")

// ARModel is an autoregressive model of order p fitted by the Yule–Walker
// equations. It stands in for the paper's ARIMA discussion: on bursty,
// background-dominated traffic its forecasts collapse to the mean and miss
// the rare active bursts (Sec. 4.2a).
type ARModel struct {
	// Coeffs are phi_1..phi_p.
	Coeffs []float64
	// Mean is the sample mean removed before fitting.
	Mean float64
	// Sigma2 is the innovation variance estimate.
	Sigma2 float64
}

// FitAR fits an AR(p) model by solving the Yule–Walker system with
// Levinson–Durbin recursion.
func FitAR(xs []float64, p int) (*ARModel, error) {
	if p < 1 || len(xs) <= p+1 {
		return nil, ErrOrder
	}
	acf := corr.ACF(xs, p)
	variance := stats.PopVariance(xs)
	m := &ARModel{Mean: stats.Mean(xs)}
	if variance == 0 {
		// Constant series: AR coefficients are irrelevant; forecast = mean.
		m.Coeffs = make([]float64, p)
		return m, nil
	}

	// Levinson–Durbin on autocorrelations.
	phi := make([]float64, p+1)
	prev := make([]float64, p+1)
	e := 1.0 // normalized innovation variance
	for k := 1; k <= p; k++ {
		acc := acf[k]
		for j := 1; j < k; j++ {
			acc -= prev[j] * acf[k-j]
		}
		if e == 0 {
			break
		}
		reflection := acc / e
		phi[k] = reflection
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - reflection*prev[k-j]
		}
		e *= 1 - reflection*reflection
		copy(prev, phi)
	}
	m.Coeffs = make([]float64, p)
	copy(m.Coeffs, phi[1:])
	m.Sigma2 = e * variance
	return m, nil
}

// Predict returns the one-step-ahead forecast given the most recent
// observations (latest last). It needs at least p observations.
func (m *ARModel) Predict(recent []float64) float64 {
	p := len(m.Coeffs)
	if len(recent) < p {
		return m.Mean
	}
	pred := 0.0
	for j := 0; j < p; j++ {
		pred += m.Coeffs[j] * (recent[len(recent)-1-j] - m.Mean)
	}
	return m.Mean + pred
}

// Backtest runs one-step-ahead forecasts over xs and returns the root mean
// squared error and the "burst miss rate": the share of observations above
// burstThreshold whose forecast stayed below it — the paper's argument that
// ARIMA-style models cannot anticipate rare active bursts.
func (m *ARModel) Backtest(xs []float64, burstThreshold float64) (rmse, burstMissRate float64) {
	p := len(m.Coeffs)
	if len(xs) <= p {
		return 0, 0
	}
	var se float64
	var bursts, missed int
	for t := p; t < len(xs); t++ {
		pred := m.Predict(xs[:t])
		d := xs[t] - pred
		se += d * d
		if xs[t] >= burstThreshold {
			bursts++
			if pred < burstThreshold {
				missed++
			}
		}
	}
	rmse = math.Sqrt(se / float64(len(xs)-p))
	if bursts > 0 {
		burstMissRate = float64(missed) / float64(bursts)
	}
	return rmse, burstMissRate
}
