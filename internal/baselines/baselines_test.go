package baselines

import (
	"math"
	"math/rand"
	"testing"
)

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 3}, []float64{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Errorf("d = %g, want 4", d)
	}
	// NaN pairs are skipped.
	nan := math.NaN()
	d2, _ := Euclidean([]float64{1, nan, 3}, []float64{1, 99, 3})
	if d2 != 0 {
		t.Errorf("NaN-skipped distance = %g, want 0", d2)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Errorf("want ErrLength, got %v", err)
	}
}

func TestEuclideanScaleSensitivity(t *testing.T) {
	// The paper's core argument: identical trends at different magnitudes
	// look far apart to Euclidean distance.
	x := []float64{1, 2, 3, 4, 5}
	scaled := []float64{10, 20, 30, 40, 50}
	same, _ := Euclidean(x, x)
	far, _ := Euclidean(x, scaled)
	if same != 0 || far < 10 {
		t.Errorf("Euclidean should punish scaling: same=%g far=%g", same, far)
	}
}

func TestDTW(t *testing.T) {
	x := []float64{0, 1, 2, 1, 0}
	if d := DTW(x, x, 0); d != 0 {
		t.Errorf("self-DTW = %g", d)
	}
	// DTW forgives time shifts — exactly why the paper rejects it.
	shifted := []float64{0, 0, 1, 2, 1}
	dtw := DTW(x, shifted, 0)
	eu, _ := Euclidean(x, shifted)
	if dtw >= eu {
		t.Errorf("DTW (%g) should be below Euclidean (%g) on shifted series", dtw, eu)
	}
	// Band restriction can only increase the distance.
	if banded := DTW(x, shifted, 1); banded < dtw-1e-12 {
		t.Errorf("banded DTW %g < unconstrained %g", banded, dtw)
	}
	// Degenerate inputs.
	if DTW(nil, nil, 0) != 0 {
		t.Error("empty-empty DTW should be 0")
	}
	if !math.IsInf(DTW(nil, x, 0), 1) {
		t.Error("empty-vs-nonempty DTW should be +Inf")
	}
}

func TestPAA(t *testing.T) {
	xs := []float64{1, 1, 5, 5}
	paa := PAA(xs, 2)
	if len(paa) != 2 || paa[0] != 1 || paa[1] != 5 {
		t.Errorf("paa = %v", paa)
	}
	// More segments than points degrades gracefully.
	if got := PAA(xs, 10); len(got) != 4 {
		t.Errorf("oversegmented paa = %v", got)
	}
	if PAA(nil, 3) != nil || PAA(xs, 0) != nil {
		t.Error("degenerate PAA should be nil")
	}
}

func TestGaussianBreakpoints(t *testing.T) {
	b := GaussianBreakpoints(4)
	if len(b) != 3 {
		t.Fatalf("breakpoints = %v", b)
	}
	// Known: quartile breakpoints of N(0,1) at ±0.6745 and 0.
	if math.Abs(b[0]+0.6744898) > 1e-4 || math.Abs(b[1]) > 1e-10 || math.Abs(b[2]-0.6744898) > 1e-4 {
		t.Errorf("breakpoints = %v", b)
	}
}

func TestSAXOnGaussianDataIsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// Segment length 1 so PAA does not shrink the variance: on Gaussian
	// data the equiprobable breakpoints then yield balanced symbol use.
	word, err := SAX(xs, len(xs), 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := SymbolHistogram(word, 4)
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("symbol %c count = %d, want roughly balanced (~1000)", 'a'+s, c)
		}
	}
}

func TestSAXOnZipfianDataIsDegenerate(t *testing.T) {
	// The paper's critique, reproduced: on heavy-tailed traffic the SAX
	// symbols collapse onto the low region even after z-normalization.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4000)
	for i := range xs {
		if rng.Float64() < 0.03 {
			xs[i] = 1e6 * rng.ExpFloat64() // rare bursts
		} else {
			xs[i] = 500 * rng.Float64() // background
		}
	}
	word, err := SAX(xs, 400, 6)
	if err != nil {
		t.Fatal(err)
	}
	counts := SymbolHistogram(word, 6)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if frac := float64(maxCount) / 400; frac < 0.5 {
		t.Errorf("dominant symbol share = %.2f, want > 0.5 (degenerate coding)", frac)
	}
}

func TestSAXErrors(t *testing.T) {
	if _, err := SAX([]float64{1, 2}, 2, 1); err != ErrAlphabet {
		t.Errorf("want ErrAlphabet, got %v", err)
	}
	if _, err := SAX([]float64{1, 2}, 2, 27); err != ErrAlphabet {
		t.Errorf("want ErrAlphabet, got %v", err)
	}
}

func TestSAXMotifsGroupIdenticalShapes(t *testing.T) {
	up := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	down := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	groups, err := SAXMotifs([][]float64{up, down, up, down, up}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, idx := range groups {
		sizes = append(sizes, len(idx))
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d (%v), want 2", len(groups), groups)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 5 {
		t.Errorf("grouped %d windows, want 5", total)
	}
}

func TestFitARRecoversCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.7*xs[i-1] + rng.NormFloat64()
	}
	m, err := FitAR(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-0.7) > 0.05 {
		t.Errorf("phi = %g, want ~0.7", m.Coeffs[0])
	}
	if m.Sigma2 < 0.8 || m.Sigma2 > 1.2 {
		t.Errorf("sigma2 = %g, want ~1", m.Sigma2)
	}
}

func TestARPredictsMeanForConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	m, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(xs); got != 5 {
		t.Errorf("constant prediction = %g", got)
	}
}

func TestARMissesBursts(t *testing.T) {
	// Background plus rare huge bursts: the AR forecaster must miss nearly
	// all bursts — the quantitative form of the paper's ARIMA remark.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 5000)
	for i := range xs {
		if rng.Float64() < 0.01 {
			xs[i] = 1e6
		} else {
			xs[i] = 1000 * rng.Float64()
		}
	}
	m, err := FitAR(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, missRate := m.Backtest(xs, 1e5)
	if missRate < 0.9 {
		t.Errorf("burst miss rate = %.2f, want ~1 (AR cannot anticipate bursts)", missRate)
	}
}

func TestFitARErrors(t *testing.T) {
	if _, err := FitAR([]float64{1, 2}, 3); err != ErrOrder {
		t.Errorf("want ErrOrder, got %v", err)
	}
	if _, err := FitAR([]float64{1, 2, 3}, 0); err != ErrOrder {
		t.Errorf("want ErrOrder, got %v", err)
	}
}

func TestSAXWordLength(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	word, err := SAX(xs, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(word) != 10 {
		t.Errorf("word %q length %d, want 10", word, len(word))
	}
	// Monotone input → non-decreasing symbols.
	if sorted := sortString(word); sorted != word {
		t.Errorf("monotone series should give sorted word, got %q", word)
	}
}

func sortString(s string) string {
	b := []byte(s)
	for i := range b {
		for j := i + 1; j < len(b); j++ {
			if b[j] < b[i] {
				b[i], b[j] = b[j], b[i]
			}
		}
	}
	return string(b)
}

func TestSymbolHistogramIgnoresJunk(t *testing.T) {
	counts := SymbolHistogram("ab!z", 2)
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
