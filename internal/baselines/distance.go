// Package baselines implements the alternative techniques the paper
// compares against and rejects: Euclidean distance and Dynamic Time
// Warping as similarity measures (Sec. 5), traffic-volume ranking for
// dominance (Sec. 6.2), SAX symbolic representation for motif discovery
// (Sec. 2), and an autoregressive forecaster standing in for the ARIMA
// modelling the paper finds unable to predict traffic bursts (Sec. 4.2).
package baselines

import (
	"errors"
	"math"
)

// ErrLength is returned when two series have different lengths where equal
// lengths are required.
var ErrLength = errors.New("baselines: series must have equal length")

// Euclidean returns the Euclidean distance between two equal-length series,
// the formula of Sec. 6.2: sqrt(Σ (x_i - y_i)²). NaN pairs are skipped so
// the metric is usable on series with missing observations.
func Euclidean(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrLength
	}
	sum := 0.0
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		d := x[i] - y[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// DTW returns the Dynamic Time Warping distance between x and y under a
// Sakoe–Chiba band of the given radius (radius <= 0 means unconstrained).
// The paper rejects DTW because it matches time-shifted activity, which is
// exactly what ISP-facing behavioural patterns must not do; the
// implementation exists to demonstrate that on data.
func DTW(x, y []float64, radius int) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		if n == m {
			return 0
		}
		return math.Inf(1)
	}
	if radius <= 0 {
		radius = n + m // effectively unconstrained
	}
	// Two-row dynamic program.
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - radius
		if lo < 1 {
			lo = 1
		}
		hi := i + radius
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			cost := math.Abs(x[i-1] - y[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}
