package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"homesight/internal/timeseries"
)

var mon = time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)

// regularHome builds a per-minute series of `weeks` weeks repeating a daily
// evening bump, with multiplicative noise and minute-level burstiness. This
// is the kind of gateway whose regularity only becomes visible after
// aggregation — exactly the paper's premise.
func regularHome(weeks int, noise float64, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	n := weeks * 7 * 24 * 60
	vals := make([]float64, n)
	for m := 0; m < n; m++ {
		hour := float64(m%(24*60)) / 60
		base := 200.0 // background
		// Evening bump 19:00-23:00.
		bump := math.Exp(-math.Pow((hour-21)/1.5, 2))
		dayScale := math.Exp(noise * rng.NormFloat64())
		active := 0.0
		if rng.Float64() < 0.25*bump*dayScale {
			active = 5e5 * rng.ExpFloat64() // bursty minutes inside the bump
		}
		vals[m] = base*rng.Float64() + active
	}
	return timeseries.New(mon, time.Minute, vals)
}

// chaoticHome has no repeating structure at all.
func chaoticHome(weeks int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	n := weeks * 7 * 24 * 60
	vals := make([]float64, n)
	for m := range vals {
		if rng.Float64() < 0.01 {
			vals[m] = 1e6 * rng.ExpFloat64()
		} else {
			vals[m] = 100 * rng.Float64()
		}
	}
	return timeseries.New(mon, time.Minute, vals)
}

func TestWeeklyGatewayAggregationHelps(t *testing.T) {
	// 5 raw weeks leave 4 complete 2am-phase-shifted weeks.
	s := regularHome(5, 0.05, 1)
	fine, err := Default.WeeklyGateway(s, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Default.WeeklyGateway(s, 8*time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.AvgCorr <= fine.AvgCorr {
		t.Errorf("8h aggregation (%.3f) should beat 1h (%.3f) on a regular home",
			coarse.AvgCorr, fine.AvgCorr)
	}
	if coarse.Pairs != 6 { // C(4,2)
		t.Errorf("pairs = %d, want 6", coarse.Pairs)
	}
}

func TestWeeklyGatewayChaoticStaysLow(t *testing.T) {
	s := chaoticHome(4, 2)
	g, err := Default.WeeklyGateway(s, 8*time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if g.AvgCorr > 0.5 {
		t.Errorf("chaotic home week-week corr = %.3f, want low", g.AvgCorr)
	}
	if g.Stationary {
		t.Error("chaotic home must not be stationary")
	}
}

func TestDailyGatewayPairsAreSameWeekdayOnly(t *testing.T) {
	s := regularHome(4, 0.05, 3)
	g, err := Default.DailyGateway(s, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// 28 days → 7 weekdays × C(4,2)=6 pairs = 42.
	if g.Pairs != 42 {
		t.Errorf("pairs = %d, want 42", g.Pairs)
	}
	if g.AvgCorr < 0.3 {
		t.Errorf("regular home same-day corr = %.3f, want decent", g.AvgCorr)
	}
}

func TestCurvePointsAndBest(t *testing.T) {
	cohort := []*timeseries.Series{
		regularHome(4, 0.04, 10),
		regularHome(4, 0.06, 11),
		chaoticHome(4, 12),
	}
	var pts []CurvePoint
	for _, bin := range []time.Duration{time.Hour, 3 * time.Hour, 8 * time.Hour} {
		p, err := Default.WeeklyPoint(cohort, bin, 2*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if p.Gateways != 3 {
			t.Errorf("bin %v: gateways = %d, want 3", bin, p.Gateways)
		}
		pts = append(pts, p)
	}
	best := Best(pts, false)
	if best.Bin == time.Hour {
		t.Errorf("1h should not win the weekly curve (best=%v)", best.Bin)
	}
	// Curve should rise with aggregation for this cohort.
	if pts[0].AvgCorrAll > pts[2].AvgCorrAll {
		t.Errorf("curve not rising: %v", pts)
	}
}

func TestDailyPointStationaryDist(t *testing.T) {
	cohort := []*timeseries.Series{
		regularHome(4, 0.02, 20),
		chaoticHome(4, 21),
	}
	p, err := Default.DailyPoint(cohort, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gateways != 2 {
		t.Errorf("gateways = %d", p.Gateways)
	}
	total := 0
	for _, c := range p.StationaryDayDist {
		total += c
	}
	if total != p.StationaryGateways {
		t.Errorf("day-dist total %d != stationary gateways %d", total, p.StationaryGateways)
	}
}

func TestBestUsesRequestedCurve(t *testing.T) {
	pts := []CurvePoint{
		{Bin: time.Hour, AvgCorrAll: 0.5, AvgCorrStationary: 0.2},
		{Bin: 8 * time.Hour, AvgCorrAll: 0.3, AvgCorrStationary: 0.9},
	}
	if Best(pts, false).Bin != time.Hour {
		t.Error("all-gateway best should pick 1h")
	}
	if Best(pts, true).Bin != 8*time.Hour {
		t.Error("stationary best should pick 8h")
	}
}

func TestCandidateBinsAreValid(t *testing.T) {
	s := timeseries.Zeros(mon, time.Minute, 7*24*60)
	for _, bin := range WeeklyBins {
		if _, err := timeseries.WeeklySpec(bin, 0).Windows(s); err != nil {
			t.Errorf("weekly bin %v invalid: %v", bin, err)
		}
	}
	for _, bin := range DailyBins {
		if _, err := timeseries.DailySpec(bin).Windows(s); err != nil {
			t.Errorf("daily bin %v invalid: %v", bin, err)
		}
	}
	if BestWeekly.PointsPerWindow() != 21 || BestDaily.PointsPerWindow() != 8 {
		t.Error("paper's best specs should give 21 and 8 points per window")
	}
}
