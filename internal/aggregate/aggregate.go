// Package aggregate implements Definition 3 of the paper: choosing the best
// time-aggregation granularity as the one that maximizes the expected
// window-to-window correlation similarity. It produces the aggregation
// curves of Figs. 6 and 8 (weekly and daily patterns) and the stationary-
// gateway counts of Fig. 7.
package aggregate

import (
	"time"

	"homesight/internal/corrsim"
	"homesight/internal/stationarity"
	"homesight/internal/timeseries"
)

// WeeklyBins are the candidate granularities of Sec. 7.1.1: factors of 24h
// (plus the raw 1-minute binning, which the curves show to be hopeless).
var WeeklyBins = []time.Duration{
	time.Minute,
	1 * time.Hour, 2 * time.Hour, 3 * time.Hour, 4 * time.Hour,
	6 * time.Hour, 8 * time.Hour, 12 * time.Hour, 24 * time.Hour,
}

// DailyBins are the candidate granularities of Sec. 7.1.2, all factors of
// 1440 minutes and small enough to leave >= 8 points per day.
var DailyBins = []time.Duration{
	1 * time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute,
	60 * time.Minute, 90 * time.Minute, 120 * time.Minute, 180 * time.Minute,
}

// BestWeekly is the paper's winning weekly aggregation: 8-hour bins
// starting at 2am.
var BestWeekly = timeseries.WeeklySpec(8*time.Hour, 2*time.Hour)

// BestDaily is the paper's winning daily aggregation: 3-hour bins.
var BestDaily = timeseries.DailySpec(3 * time.Hour)

// Analyzer computes aggregation curves.
type Analyzer struct {
	// Measure is the similarity measure (zero value = α 0.05).
	Measure corrsim.Measure
	// Checker decides strong stationarity (zero value = paper defaults).
	Checker stationarity.Checker
}

// Default uses the paper's parameters everywhere.
var Default = Analyzer{}

// GatewayWeekly is the per-gateway weekly evaluation at one granularity.
type GatewayWeekly struct {
	// AvgCorr is the mean similarity over all week-week pairs.
	AvgCorr float64
	// Pairs is the number of week pairs examined.
	Pairs int
	// Stationary is the Definition 2 verdict over the week windows.
	Stationary bool
}

// WeeklyGateway evaluates one gateway's week-to-week regularity for a bin
// size and phase offset.
func (a Analyzer) WeeklyGateway(s *timeseries.Series, bin, phase time.Duration) (GatewayWeekly, error) {
	spec := timeseries.WeeklySpec(bin, phase)
	wins, err := spec.Windows(s)
	if err != nil {
		return GatewayWeekly{}, err
	}
	observed := observedWindows(wins)
	out := GatewayWeekly{}
	for i := 0; i < len(observed); i++ {
		for j := i + 1; j < len(observed); j++ {
			out.AvgCorr += a.Measure.Similarity(observed[i].Values, observed[j].Values)
			out.Pairs++
		}
	}
	if out.Pairs > 0 {
		out.AvgCorr /= float64(out.Pairs)
	}
	out.Stationary = a.Checker.CheckWindows(observed).Stationary
	return out, nil
}

// GatewayDaily is the per-gateway daily evaluation at one granularity.
type GatewayDaily struct {
	// AvgCorr is the mean similarity over all same-weekday day pairs
	// (Mondays vs Mondays, ... — the paper does not expect Monday to look
	// like Saturday).
	AvgCorr float64
	// Pairs is the number of same-weekday pairs examined.
	Pairs int
	// StationaryDays is the number of weekdays whose windows satisfy
	// Definition 2.
	StationaryDays int
}

// Stationary reports whether at least one weekday is stationary, the
// criterion of Fig. 7.
func (g GatewayDaily) Stationary() bool { return g.StationaryDays > 0 }

// DailyGateway evaluates one gateway's day-to-day regularity for a bin size.
func (a Analyzer) DailyGateway(s *timeseries.Series, bin time.Duration) (GatewayDaily, error) {
	spec := timeseries.DailySpec(bin)
	wins, err := spec.Windows(s)
	if err != nil {
		return GatewayDaily{}, err
	}
	observed := observedWindows(wins)
	out := GatewayDaily{}
	byDay := make(map[time.Weekday][]timeseries.Window)
	for _, w := range observed {
		byDay[w.Weekday()] = append(byDay[w.Weekday()], w)
	}
	for _, group := range byDay {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				out.AvgCorr += a.Measure.Similarity(group[i].Values, group[j].Values)
				out.Pairs++
			}
		}
	}
	if out.Pairs > 0 {
		out.AvgCorr /= float64(out.Pairs)
	}
	out.StationaryDays = a.Checker.CheckByWeekday(observed).StationaryDays
	return out, nil
}

// CurvePoint is one point of an aggregation curve (Figs. 6 and 8).
type CurvePoint struct {
	Bin   time.Duration
	Phase time.Duration
	// AvgCorrAll is the mean per-gateway average correlation over every
	// gateway with at least one window pair.
	AvgCorrAll float64
	// AvgCorrStationary restricts the mean to strongly stationary gateways.
	AvgCorrStationary float64
	// Gateways and StationaryGateways count the populations behind the two
	// averages.
	Gateways           int
	StationaryGateways int
	// StationaryDayDist[k] counts gateways with exactly k+1 stationary
	// weekdays (daily curves only; the stack of Fig. 7).
	StationaryDayDist []int
}

// WeeklyPoint evaluates one weekly granularity across a cohort of gateway
// series.
func (a Analyzer) WeeklyPoint(cohort []*timeseries.Series, bin, phase time.Duration) (CurvePoint, error) {
	pt := CurvePoint{Bin: bin, Phase: phase}
	var sumAll, sumStat float64
	for _, s := range cohort {
		g, err := a.WeeklyGateway(s, bin, phase)
		if err != nil {
			return pt, err
		}
		if g.Pairs == 0 {
			continue
		}
		pt.Gateways++
		sumAll += g.AvgCorr
		if g.Stationary {
			pt.StationaryGateways++
			sumStat += g.AvgCorr
		}
	}
	if pt.Gateways > 0 {
		pt.AvgCorrAll = sumAll / float64(pt.Gateways)
	}
	if pt.StationaryGateways > 0 {
		pt.AvgCorrStationary = sumStat / float64(pt.StationaryGateways)
	}
	return pt, nil
}

// DailyPoint evaluates one daily granularity across a cohort.
func (a Analyzer) DailyPoint(cohort []*timeseries.Series, bin time.Duration) (CurvePoint, error) {
	pt := CurvePoint{Bin: bin, StationaryDayDist: make([]int, 7)}
	var sumAll, sumStat float64
	for _, s := range cohort {
		g, err := a.DailyGateway(s, bin)
		if err != nil {
			return pt, err
		}
		if g.Pairs == 0 {
			continue
		}
		pt.Gateways++
		sumAll += g.AvgCorr
		if g.Stationary() {
			pt.StationaryGateways++
			sumStat += g.AvgCorr
			if g.StationaryDays <= 7 {
				pt.StationaryDayDist[g.StationaryDays-1]++
			}
		}
	}
	if pt.Gateways > 0 {
		pt.AvgCorrAll = sumAll / float64(pt.Gateways)
	}
	if pt.StationaryGateways > 0 {
		pt.AvgCorrStationary = sumStat / float64(pt.StationaryGateways)
	}
	return pt, nil
}

// Best returns the curve point with the highest average correlation, using
// the stationary-gateway average when useStationary is set (the paper picks
// 8h@2am and 3h this way). Ties go to the earlier point.
func Best(points []CurvePoint, useStationary bool) CurvePoint {
	var best CurvePoint
	bestVal := -1.0
	for _, p := range points {
		v := p.AvgCorrAll
		if useStationary {
			v = p.AvgCorrStationary
		}
		if v > bestVal {
			bestVal = v
			best = p
		}
	}
	return best
}

// observedWindows filters out windows with no observations at all.
func observedWindows(wins []timeseries.Window) []timeseries.Window {
	out := make([]timeseries.Window, 0, len(wins))
	for _, w := range wins {
		if w.Observed() {
			out = append(out, w)
		}
	}
	return out
}
