package specfn

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1)=1, B(2,3)=1/12, B(0.5,0.5)=pi.
	approx(t, "LogBeta(1,1)", LogBeta(1, 1), 0, 1e-12)
	approx(t, "LogBeta(2,3)", LogBeta(2, 3), math.Log(1.0/12.0), 1e-12)
	approx(t, "LogBeta(.5,.5)", LogBeta(0.5, 0.5), math.Log(math.Pi), 1e-12)
}

func TestLogBetaPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive argument")
		}
	}()
	LogBeta(0, 1)
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		approx(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-12)
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.1, 0.3, 0.9} {
		approx(t, "I_x(2,2)", RegIncBeta(2, 2, x), x*x*(3-2*x), 1e-10)
	}
	// I_x(5,3) = sum_{j=5}^{7} C(7,j) x^j (1-x)^(7-j) = 0.0962560 at x = 0.4.
	approx(t, "I_.4(5,3)", RegIncBeta(5, 3, 0.4), 0.0962560, 1e-7)
	// I_x(1/2,1/2) = (2/pi) asin(sqrt(x)) — the arcsine law.
	approx(t, "I_.7(.5,.5)", RegIncBeta(0.5, 0.5, 0.7), 2/math.Pi*math.Asin(math.Sqrt(0.7)), 1e-9)
}

func TestRegIncBetaBoundsAndMonotone(t *testing.T) {
	err := quick.Check(func(a8, b8 uint8, x float64) bool {
		a := 0.5 + float64(a8%40)/4
		b := 0.5 + float64(b8%40)/4
		x = math.Abs(math.Mod(x, 1))
		v := RegIncBeta(a, b, x)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
		// Monotone in x.
		x2 := x + (1-x)/3
		return RegIncBeta(a, b, x2) >= v-1e-12
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	err := quick.Check(func(a8, b8 uint8, x float64) bool {
		a := 0.5 + float64(a8%20)/2
		b := 0.5 + float64(b8%20)/2
		x = math.Abs(math.Mod(x, 1))
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return math.Abs(lhs-rhs) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestInvRegIncBeta(t *testing.T) {
	for _, tc := range []struct{ a, b, p float64 }{
		{1, 1, 0.5}, {2, 3, 0.1}, {5, 2, 0.9}, {0.5, 0.5, 0.25}, {10, 10, 0.975},
	} {
		x := InvRegIncBeta(tc.a, tc.b, tc.p)
		approx(t, "roundtrip", RegIncBeta(tc.a, tc.b, x), tc.p, 1e-9)
	}
	if InvRegIncBeta(2, 2, 0) != 0 || InvRegIncBeta(2, 2, 1) != 1 {
		t.Error("boundary quantiles should be exact")
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		approx(t, "P(1,x)", RegLowerIncGamma(1, x), 1-math.Exp(-x), 1e-12)
	}
	// Reference values from R: pgamma(2, shape=3) = 0.32332358,
	// pgamma(0.5, shape=0.5) = 0.68268949 (equals erf(sqrt(0.5))).
	approx(t, "P(3,2)", RegLowerIncGamma(3, 2), 0.32332358, 1e-7)
	approx(t, "P(.5,.5)", RegLowerIncGamma(0.5, 0.5), 0.68268949, 1e-7)
}

func TestRegIncGammaComplement(t *testing.T) {
	err := quick.Check(func(a8 uint8, x float64) bool {
		a := 0.5 + float64(a8%40)/4
		x = math.Abs(math.Mod(x, 20))
		p := RegLowerIncGamma(a, x)
		q := RegUpperIncGamma(a, x)
		return p >= 0 && p <= 1 && math.Abs(p+q-1) < 1e-10
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestInvErf(t *testing.T) {
	for _, p := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999, 0.9999} {
		x := InvErf(p)
		approx(t, "erf(inverf(p))", math.Erf(x), p, 1e-10)
	}
	if !math.IsInf(InvErf(1), 1) || !math.IsInf(InvErf(-1), -1) {
		t.Error("InvErf at +-1 should be infinite")
	}
}

func TestInvErfRoundtripQuick(t *testing.T) {
	err := quick.Check(func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.9999)
		return math.Abs(math.Erf(InvErf(p))-p) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
