// Package specfn implements the special functions that underpin the
// statistical distributions used throughout homesight: the regularized
// incomplete beta and gamma functions, the log-beta function, and inverse
// helpers. The implementations follow the classical continued-fraction and
// series expansions (Abramowitz & Stegun; Numerical Recipes) and use only
// the standard library.
package specfn

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when an iterative expansion fails to converge
// within its iteration budget. In practice this only happens for extreme
// arguments far outside the ranges exercised by the distributions.
var ErrNoConvergence = errors.New("specfn: expansion did not converge")

const (
	maxIterations = 300
	epsilon       = 3e-14
	fpMin         = 1e-300
)

// LogBeta returns the natural logarithm of the complete beta function
// B(a, b) = Γ(a)Γ(b)/Γ(a+b). It panics if a or b is not positive.
func LogBeta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("specfn: LogBeta requires positive arguments")
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// the CDF of the Beta(a, b) distribution evaluated at x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		panic("specfn: RegIncBeta requires positive shape parameters")
	case math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// The continued fraction converges rapidly for x < (a+1)/(a+b+2);
	// otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)-LogBeta(b, a))*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			return h
		}
	}
	// Good enough for the tails we evaluate; callers treat the value as a
	// probability so a tiny convergence residue is harmless.
	return h
}

// InvRegIncBeta returns x such that RegIncBeta(a, b, x) = p, computed by
// bisection refined with Newton steps. p must lie in [0, 1].
func InvRegIncBeta(a, b, p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	lo, hi := 0.0, 1.0
	x := 0.5
	for i := 0; i < 200; i++ {
		v := RegIncBeta(a, b, x)
		if math.Abs(v-p) < 1e-12 {
			return x
		}
		if v < p {
			lo = x
		} else {
			hi = x
		}
		// Newton step using the beta density as the derivative.
		dens := math.Exp((a-1)*math.Log(x) + (b-1)*math.Log(1-x) - LogBeta(a, b))
		next := x
		if dens > 0 {
			next = x - (v-p)/dens
		}
		if next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		x = next
	}
	return x
}

// RegLowerIncGamma returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a), the CDF of the Gamma(a, 1) distribution.
func RegLowerIncGamma(a, x float64) float64 {
	switch {
	case a <= 0:
		panic("specfn: RegLowerIncGamma requires a > 0")
	case math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegUpperIncGamma returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegUpperIncGamma(a, x float64) float64 {
	switch {
	case a <= 0:
		panic("specfn: RegUpperIncGamma requires a > 0")
	case math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

// gammaSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a, x) by continued fraction, valid for x >= a+1.
func gammaCF(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Erf is the error function. It simply forwards to math.Erf and exists so
// that the dist package depends on a single special-function provider.
func Erf(x float64) float64 { return math.Erf(x) }

// Erfc is the complementary error function.
func Erfc(x float64) float64 { return math.Erfc(x) }

// InvErf returns the inverse error function, accurate to roughly 1e-9 over
// (-1, 1), using the rational initial guess of Giles (2010) refined with two
// Newton iterations.
func InvErf(p float64) float64 {
	switch {
	case p <= -1:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0:
		return 0
	}
	// Initial approximation.
	w := -math.Log((1 - p) * (1 + p))
	var x float64
	if w < 6.25 {
		w -= 3.125
		x = -3.6444120640178196996e-21
		x = 2.93243101e-8 + x*w
		x = 1.22150334e-6 + x*w
		x = -0.00000264646143e0 + x*w
		x = -0.0000125739584e0 + x*w
		x = 0.000248536208 + x*w
		x = 0.000182371561e0 + x*w
		x = -0.00429451096 + x*w
		x = 0.0130933437 + x*w
		x = 0.240426110 + x*w
		x = 0.886226899 + x*w
		x = x * p
	} else {
		// Tail: erf(x) ~ 1 - exp(-x^2)/(x*sqrt(pi)) gives x ~ sqrt(w - log w)
		// as a serviceable starting point for Newton refinement.
		x = math.Copysign(math.Sqrt(w-math.Log(w)), p)
	}
	// Newton refinement: f(x) = erf(x) - p, f'(x) = 2/sqrt(pi) * exp(-x^2).
	for i := 0; i < 60; i++ {
		diff := math.Erf(x) - p
		step := diff / (2 / math.Sqrt(math.Pi) * math.Exp(-x*x))
		x -= step
		if math.Abs(step) < 1e-15*(1+math.Abs(x)) {
			break
		}
	}
	return x
}
