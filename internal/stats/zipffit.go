package stats

import (
	"math"
	"sort"
)

// ZipfFit is a rank–frequency power-law fit of a sample: if the values are
// Zipf-distributed, log(value) is approximately linear in log(rank) with
// negative slope. The paper observes that gateway traffic values follow
// Zipf's law (Sec. 4.1); this fit is how we verify the synthetic generator
// reproduces that shape.
type ZipfFit struct {
	// Exponent is the estimated Zipf exponent (the negated slope of the
	// log–log rank/value regression).
	Exponent float64
	// R2 is the coefficient of determination of the log–log fit; values
	// near 1 indicate a convincing power law.
	R2 float64
	// N is the number of positive observations used.
	N int
}

// FitZipf fits a rank–value power law to the positive values of xs.
// Non-positive values are ignored (rank/value log-log regression is
// undefined for them); fewer than 3 usable values yields a zero fit.
func FitZipf(xs []float64) ZipfFit {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			vals = append(vals, x)
		}
	}
	if len(vals) < 3 {
		return ZipfFit{N: len(vals)}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))

	n := len(vals)
	logRank := make([]float64, n)
	logVal := make([]float64, n)
	for i, v := range vals {
		logRank[i] = math.Log(float64(i + 1))
		logVal[i] = math.Log(v)
	}
	slope, intercept := simpleOLS(logRank, logVal)

	// R^2 of the fit.
	meanY := Mean(logVal)
	var ssRes, ssTot float64
	for i := range logVal {
		pred := intercept + slope*logRank[i]
		ssRes += (logVal[i] - pred) * (logVal[i] - pred)
		ssTot += (logVal[i] - meanY) * (logVal[i] - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return ZipfFit{Exponent: -slope, R2: r2, N: n}
}

// simpleOLS returns the least-squares slope and intercept of y on x.
func simpleOLS(x, y []float64) (slope, intercept float64) {
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}
