// Package tests implements the hypothesis tests the paper's analysis
// framework relies on: the two-sample Kolmogorov–Smirnov test (the
// distribution-similarity half of strong stationarity, Def. 2), the
// Augmented Dickey–Fuller and KPSS unit-root tests used in the preliminary
// analysis (Sec. 4.2), and a Jarque–Bera normality test (used to document
// why SAX's normality assumption fails on traffic data, Sec. 2).
package tests

import (
	"errors"
	"math"
	"sort"

	"homesight/internal/stats/dist"
)

// ErrTooShort is returned when a sample is too small for the test.
var ErrTooShort = errors.New("tests: sample too short")

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the supremum distance between the two empirical CDFs.
	D float64
	// PValue is the asymptotic two-sided p-value.
	PValue float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// Rejected reports whether the null hypothesis (same distribution) is
// rejected at level alpha.
func (r KSResult) Rejected(alpha float64) bool { return r.PValue < alpha }

// KolmogorovSmirnov performs the two-sample KS test of H0: x and y are drawn
// from the same distribution. The p-value uses the asymptotic Kolmogorov
// distribution with the Numerical-Recipes finite-sample correction.
func KolmogorovSmirnov(x, y []float64) (KSResult, error) {
	if len(x) == 0 || len(y) == 0 {
		return KSResult{}, ErrTooShort
	}
	xs := sortedCopy(x)
	ys := sortedCopy(y)
	n1, n2 := len(xs), len(ys)

	// Walk both sorted samples computing the max CDF gap.
	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v1, v2 := xs[i], ys[j]
		v := math.Min(v1, v2)
		for i < n1 && xs[i] <= v {
			i++
		}
		for j < n2 && ys[j] <= v {
			j++
		}
		gap := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if gap > d {
			d = gap
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	sq := math.Sqrt(ne)
	stat := (sq + 0.12 + 0.11/sq) * d
	p := dist.Kolmogorov{}.Survival(stat)
	return KSResult{D: d, PValue: p, N1: n1, N2: n2}, nil
}

func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
