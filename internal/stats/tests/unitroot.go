package tests

import (
	"math"
	"sync"

	"homesight/internal/stats"
	"homesight/internal/stats/regress"
)

// urScratch is the reusable per-call state for ADF/KPSS: the OLS
// workspace plus the difference/residual buffer. Pooled so the
// unit-root sweeps over every gateway series stop re-allocating a full
// design matrix per fit — the workspace buffers dominate and are sized
// once at the campaign's series length.
type urScratch struct {
	ws  regress.Workspace
	buf []float64
}

var urPool = sync.Pool{New: func() any { return new(urScratch) }}

// UnitRootResult is the outcome of a unit-root / stationarity test.
type UnitRootResult struct {
	// Stat is the test statistic (τ for ADF, η for KPSS).
	Stat float64
	// PValue is an interpolated p-value. It is clamped to the table range
	// ([0.01, 0.10] endpoints map to <=0.01 / >=0.10) — standard practice
	// for table-based unit-root tests.
	PValue float64
	// Lags is the number of lag terms used.
	Lags int
	// N is the effective sample size.
	N int
}

// adfCrit holds MacKinnon (2010) response-surface critical values for the
// constant, no-trend ADF regression: crit = b0 + b1/T + b2/T².
var adfCrit = []struct {
	level      float64
	b0, b1, b2 float64
}{
	{0.01, -3.43035, -6.5393, -16.786},
	{0.05, -2.86154, -2.8903, -4.234},
	{0.10, -2.56677, -1.5384, -2.809},
}

// ADF performs the Augmented Dickey–Fuller test with a constant (no trend):
//
//	Δy_t = α + γ·y_{t-1} + Σ_{i=1..lags} δ_i·Δy_{t-i} + ε_t
//
// H0: γ = 0 (unit root, non-stationary); small p-values reject the unit
// root, i.e. support stationarity. If lags < 0, the Schwert rule
// floor(12·(T/100)^0.25) is used.
func ADF(y []float64, lags int) (UnitRootResult, error) {
	t := len(y)
	if lags < 0 {
		lags = int(math.Floor(12 * math.Pow(float64(t)/100, 0.25)))
	}
	// Need rows t-1-lags > predictors (2+lags) with slack.
	if t < lags+12 {
		return UnitRootResult{}, ErrTooShort
	}

	sc := urPool.Get().(*urScratch)
	defer urPool.Put(sc)
	dy := diffInto(sc.buf, y)
	sc.buf = dy

	rows := len(dy) - lags
	p := 2 + lags
	design, resp := sc.ws.Design(rows, p)
	for i := 0; i < rows; i++ {
		tIdx := i + lags // index into dy; corresponds to y index tIdx+1
		row := design[i*p : (i+1)*p]
		row[0] = 1
		row[1] = y[tIdx] // y_{t-1}
		for k := 1; k <= lags; k++ {
			row[1+k] = dy[tIdx-k]
		}
		resp[i] = dy[tIdx]
	}
	m, err := sc.ws.FitDesign()
	if err != nil {
		// A constant series has no unit-root question to answer; callers in
		// the traffic pipeline treat it as trivially stationary.
		return UnitRootResult{}, err
	}
	tau := m.Coeffs[1] / m.StdErrs[1]
	return UnitRootResult{
		Stat:   tau,
		PValue: adfPValue(tau, rows),
		Lags:   lags,
		N:      rows,
	}, nil
}

// adfPValue interpolates the p-value from the MacKinnon critical values,
// clamping outside the tabulated [0.01, 0.10] range.
func adfPValue(tau float64, t int) float64 {
	tf := float64(t)
	crits := make([]float64, len(adfCrit))
	for i, c := range adfCrit {
		crits[i] = c.b0 + c.b1/tf + c.b2/(tf*tf)
	}
	// crits are ascending in value (1% most negative) and level ascending.
	switch {
	case tau <= crits[0]:
		return 0.01
	case tau >= crits[len(crits)-1]:
		return 0.10
	}
	for i := 0; i+1 < len(crits); i++ {
		if tau >= crits[i] && tau <= crits[i+1] {
			frac := (tau - crits[i]) / (crits[i+1] - crits[i])
			return adfCrit[i].level + frac*(adfCrit[i+1].level-adfCrit[i].level)
		}
	}
	return 0.10
}

// kpssCrit holds the Kwiatkowski et al. (1992) critical values for the
// level-stationarity statistic.
var kpssCrit = []struct{ level, crit float64 }{
	{0.10, 0.347},
	{0.05, 0.463},
	{0.025, 0.574},
	{0.01, 0.739},
}

// KPSS performs the KPSS test of H0: the series is level-stationary.
// Small p-values reject stationarity — note the opposite orientation from
// ADF. If lags < 0 the standard bandwidth floor(4·(T/100)^0.25) is used.
func KPSS(y []float64, lags int) (UnitRootResult, error) {
	t := len(y)
	if t < 12 {
		return UnitRootResult{}, ErrTooShort
	}
	if lags < 0 {
		lags = int(math.Floor(4 * math.Pow(float64(t)/100, 0.25)))
	}

	// Residuals from the level: e_t = y_t - mean.
	sc := urPool.Get().(*urScratch)
	defer urPool.Put(sc)
	mean := stats.Mean(y)
	if cap(sc.buf) < t {
		sc.buf = make([]float64, t)
	}
	e := sc.buf[:t]
	for i, v := range y {
		e[i] = v - mean
	}

	// Partial sums S_t and numerator (1/T²) Σ S_t².
	num := 0.0
	s := 0.0
	for _, v := range e {
		s += v
		num += s * s
	}
	num /= float64(t) * float64(t)

	// Long-run variance with Bartlett kernel.
	lrv := 0.0
	for _, v := range e {
		lrv += v * v
	}
	lrv /= float64(t)
	for l := 1; l <= lags; l++ {
		gamma := 0.0
		for i := l; i < t; i++ {
			gamma += e[i] * e[i-l]
		}
		gamma /= float64(t)
		w := 1 - float64(l)/float64(lags+1)
		lrv += 2 * w * gamma
	}
	if lrv <= 0 {
		// Degenerate (e.g. constant) series: trivially stationary.
		return UnitRootResult{Stat: 0, PValue: 0.10, Lags: lags, N: t}, nil
	}

	eta := num / lrv
	return UnitRootResult{Stat: eta, PValue: kpssPValue(eta), Lags: lags, N: t}, nil
}

// kpssPValue interpolates the KPSS table; larger statistics mean smaller
// p-values. Clamped to [0.01, 0.10].
func kpssPValue(eta float64) float64 {
	switch {
	case eta <= kpssCrit[0].crit:
		return 0.10
	case eta >= kpssCrit[len(kpssCrit)-1].crit:
		return 0.01
	}
	for i := 0; i+1 < len(kpssCrit); i++ {
		lo, hi := kpssCrit[i], kpssCrit[i+1]
		if eta >= lo.crit && eta <= hi.crit {
			frac := (eta - lo.crit) / (hi.crit - lo.crit)
			return lo.level + frac*(hi.level-lo.level)
		}
	}
	return 0.01
}

// diff returns the first differences of y.
func diff(y []float64) []float64 {
	return diffInto(nil, y)
}

// diffInto writes the first differences of y into buf (reusing its
// capacity) and returns the result.
func diffInto(buf, y []float64) []float64 {
	if len(y) < 2 {
		return buf[:0]
	}
	n := len(y) - 1
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	d := buf[:n]
	for i := 1; i < len(y); i++ {
		d[i-1] = y[i] - y[i-1]
	}
	return d
}
