package tests

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKSSameSample(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r, err := KolmogorovSmirnov(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 {
		t.Errorf("D = %g, want 0 for identical samples", r.D)
	}
	if r.Rejected(0.05) {
		t.Error("identical samples must not be rejected")
	}
}

func TestKSDisjointSamples(t *testing.T) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 1000
	}
	r, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 1 {
		t.Errorf("D = %g, want 1 for disjoint supports", r.D)
	}
	if !r.Rejected(0.001) {
		t.Errorf("disjoint samples must be decisively rejected, p=%g", r.PValue)
	}
}

func TestKSKnownD(t *testing.T) {
	// x = {1,2,3,4}, y = {3,4,5,6}: max gap of the ECDFs is 0.5 at v in [2,3).
	r, err := KolmogorovSmirnov([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.D-0.5) > 1e-12 {
		t.Errorf("D = %g, want 0.5", r.D)
	}
}

func TestKSSameDistributionRarelyRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rejected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		x := make([]float64, 80)
		y := make([]float64, 60)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		r, err := KolmogorovSmirnov(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected(0.05) {
			rejected++
		}
	}
	if frac := float64(rejected) / trials; frac > 0.12 {
		t.Errorf("false rejection rate %.2f, want <= ~0.05", frac)
	}
}

func TestKSDetectsScaleShift(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := make([]float64, 400)
	y := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()*3 + 1
	}
	r, _ := KolmogorovSmirnov(x, y)
	if !r.Rejected(0.01) {
		t.Errorf("scale+location shift not rejected, p=%g", r.PValue)
	}
}

func TestKSSymmetricQuick(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 5+rng.Intn(50))
		y := make([]float64, 5+rng.Intn(50))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.ExpFloat64()
		}
		a, err1 := KolmogorovSmirnov(x, y)
		b, err2 := KolmogorovSmirnov(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.D-b.D) < 1e-12 && math.Abs(a.PValue-b.PValue) < 1e-12
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestADFStationarySeries(t *testing.T) {
	// Strongly mean-reverting AR(1): unit root should be rejected.
	rng := rand.New(rand.NewSource(31))
	y := make([]float64, 500)
	for i := 1; i < len(y); i++ {
		y[i] = 0.3*y[i-1] + rng.NormFloat64()
	}
	r, err := ADF(y, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue > 0.0101 {
		t.Errorf("stationary AR(1) p = %g, want <= 0.01 (stat %g)", r.PValue, r.Stat)
	}
}

func TestADFRandomWalk(t *testing.T) {
	// Random walk has a unit root: ADF must fail to reject.
	rng := rand.New(rand.NewSource(32))
	y := make([]float64, 500)
	for i := 1; i < len(y); i++ {
		y[i] = y[i-1] + rng.NormFloat64()
	}
	r, err := ADF(y, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue < 0.05 {
		t.Errorf("random walk rejected with p = %g (stat %g)", r.PValue, r.Stat)
	}
}

func TestADFTooShort(t *testing.T) {
	if _, err := ADF(make([]float64, 5), 2); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestKPSSStationarySeries(t *testing.T) {
	// White noise is level-stationary: KPSS must not reject.
	rng := rand.New(rand.NewSource(33))
	y := make([]float64, 500)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	r, err := KPSS(y, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue < 0.0999 {
		t.Errorf("white noise KPSS p = %g, want 0.10 (stat %g)", r.PValue, r.Stat)
	}
}

func TestKPSSRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	y := make([]float64, 500)
	for i := 1; i < len(y); i++ {
		y[i] = y[i-1] + rng.NormFloat64()
	}
	r, err := KPSS(y, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue > 0.0101 {
		t.Errorf("random walk KPSS p = %g, want <= 0.01 (stat %g)", r.PValue, r.Stat)
	}
}

func TestKPSSConstantSeries(t *testing.T) {
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7
	}
	r, err := KPSS(y, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue < 0.0999 {
		t.Errorf("constant series should be trivially stationary, p=%g", r.PValue)
	}
}

func TestJarqueBeraNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	r, err := JarqueBera(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rejected(0.01) {
		t.Errorf("normal sample rejected: %+v", r)
	}
	if math.Abs(r.Skew) > 0.2 || math.Abs(r.Kurtosis) > 0.4 {
		t.Errorf("moments off for normal sample: %+v", r)
	}
}

func TestJarqueBeraHeavyTail(t *testing.T) {
	// Zipf-like heavy-tailed data must be decisively non-normal — the
	// paper's argument against SAX.
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = math.Pow(rng.Float64(), -1.3) // Pareto tail
	}
	r, err := JarqueBera(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejected(1e-6) {
		t.Errorf("heavy-tailed sample not rejected: %+v", r)
	}
	// z-normalization does not rescue normality (paper, Sec. 2).
	mean, sd := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	zs := make([]float64, len(xs))
	for i, x := range xs {
		zs[i] = (x - mean) / sd
	}
	rz, _ := JarqueBera(zs)
	if !rz.Rejected(1e-6) {
		t.Error("z-normalized heavy-tailed sample should still be non-normal")
	}
}

func TestJarqueBeraDegenerate(t *testing.T) {
	r, err := JarqueBera([]float64{2, 2, 2, 2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue != 0 {
		t.Errorf("constant sample p = %g, want 0", r.PValue)
	}
	if _, err := JarqueBera([]float64{1, 2}); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}
