package tests

import (
	"math"

	"homesight/internal/stats"
	"homesight/internal/stats/dist"
)

// JBResult is the outcome of a Jarque–Bera normality test.
type JBResult struct {
	Stat     float64
	PValue   float64
	Skew     float64
	Kurtosis float64 // excess kurtosis
	N        int
}

// Rejected reports whether normality is rejected at level alpha.
func (r JBResult) Rejected(alpha float64) bool { return r.PValue < alpha }

// JarqueBera tests H0: the sample is drawn from a normal distribution,
// using JB = n/6 (S² + K²/4) ~ χ²(2) where S is the sample skewness and K
// the excess kurtosis. The paper's critique of SAX rests on traffic values
// failing exactly this kind of test even after z-normalization (Sec. 2).
func JarqueBera(xs []float64) (JBResult, error) {
	n := len(xs)
	if n < 8 {
		return JBResult{}, ErrTooShort
	}
	mean := stats.Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	fn := float64(n)
	m2 /= fn
	m3 /= fn
	m4 /= fn
	if m2 == 0 {
		// Constant sample: degenerate, decisively non-normal.
		return JBResult{Stat: math.Inf(1), PValue: 0, N: n}, nil
	}
	skew := m3 / math.Pow(m2, 1.5)
	kurt := m4/(m2*m2) - 3
	jb := fn / 6 * (skew*skew + kurt*kurt/4)
	p := dist.ChiSquared{DF: 2}.Survival(jb)
	return JBResult{Stat: jb, PValue: p, Skew: skew, Kurtosis: kurt, N: n}, nil
}
