package stats

import "math"

// Histogram is a fixed-width binned frequency count over [Lo, Hi).
// Values exactly equal to Hi are assigned to the last bin, matching the
// right-closed convention of most plotting tools.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	// Total is the number of observations inside [Lo, Hi]; observations
	// outside the range are dropped and not counted here.
	Total int
}

// NewHistogram bins xs into `bins` equal-width bins spanning [lo, hi].
// It panics if bins < 1 or hi <= lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic("stats: NewHistogram requires bins >= 1 and hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
	for _, x := range xs {
		if x < lo || x > hi || math.IsNaN(x) {
			continue
		}
		i := int((x - lo) / h.Width)
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// AutoHistogram bins xs using the Freedman–Diaconis rule for the bin width,
// falling back to Sturges' rule when the IQR is degenerate. It returns nil
// for an empty sample.
func AutoHistogram(xs []float64) *Histogram {
	if len(xs) == 0 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi { //homesight:ignore float-eq — degenerate-range sentinel is exact
		hi = lo + 1
	}
	b, _ := NewBoxplot(xs, DefaultWhiskerK)
	n := float64(len(xs))
	width := 2 * b.IQR / math.Cbrt(n)
	var bins int
	if width > 0 {
		bins = int(math.Ceil((hi - lo) / width))
	} else {
		bins = int(math.Ceil(math.Log2(n))) + 1
	}
	if bins < 1 {
		bins = 1
	}
	if bins > 10000 {
		bins = 10000
	}
	return NewHistogram(xs, lo, hi, bins)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Density returns the normalized density of bin i, so that the histogram
// integrates to 1 over observations inside the range.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.Total) * h.Width)
}
