package corr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r.Coeff, 1, 1e-12)
	if r.PValue > 1e-9 {
		t.Errorf("perfect correlation p-value = %g, want ~0", r.PValue)
	}
	neg, _ := Pearson(x, []float64{5, 4, 3, 2, 1})
	approx(t, "r-neg", neg.Coeff, -1, 1e-12)
}

func TestPearsonReference(t *testing.T) {
	// By hand: sxy=16, sxx=17.5, syy=70/3 → r = 16/sqrt(1225/3) = 0.7917947;
	// t = r sqrt(4/(1-r^2)) = 2.593, two-sided p with 4 df = 0.060511.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 1, 4, 3, 7, 5}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r.Coeff, 16/math.Sqrt(1225.0/3.0), 1e-12)
	approx(t, "p", r.PValue, 0.060511, 1e-5)
	if !r.Significant(0.1) || r.Significant(0.05) {
		t.Error("significance thresholds misbehave")
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{3, 3, 3, 3}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r.Coeff) || r.PValue != 1 || r.Significant(0.05) {
		t.Errorf("constant series should be NaN/never-significant, got %+v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err != ErrLength {
		t.Errorf("want ErrLength, got %v", err)
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestSpearmanReference(t *testing.T) {
	// Monotone but nonlinear: Spearman sees perfection, Pearson does not.
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	s, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "rho", s.Coeff, 1, 1e-12)
	p, _ := Pearson(x, y)
	if p.Coeff >= 0.99 {
		t.Error("Pearson should be < 1 on convex monotone data")
	}
	// rho = 1 - 6*sum(d^2)/(n(n^2-1)); d = (-1,1,-1,-1,2) → 1 - 48/120 = 0.6.
	s2, _ := Spearman([]float64{1, 2, 3, 4, 5}, []float64{2, 1, 4, 5, 3})
	approx(t, "rho2", s2.Coeff, 0.6, 1e-12)
}

func TestSpearmanTies(t *testing.T) {
	// With ties, Spearman equals Pearson on average ranks.
	x := []float64{1, 1, 2, 3, 3, 3}
	y := []float64{2, 3, 3, 5, 5, 6}
	s, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s.Coeff) || s.Coeff <= 0.8 {
		t.Errorf("tied monotone data should have high rho, got %g", s.Coeff)
	}
}

func TestKendallReference(t *testing.T) {
	// R: cor.test(c(1,2,3,4,5), c(3,4,1,2,5), method="kendall") → tau = 0.2.
	k, err := Kendall([]float64{1, 2, 3, 4, 5}, []float64{3, 4, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tau", k.Coeff, 0.2, 1e-12)
	// Perfect agreement and disagreement.
	up, _ := Kendall([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	approx(t, "tau up", up.Coeff, 1, 1e-12)
	down, _ := Kendall([]float64{1, 2, 3, 4}, []float64{9, 7, 5, 3})
	approx(t, "tau down", down.Coeff, -1, 1e-12)
}

func TestKendallTauBWithTies(t *testing.T) {
	// By hand: conc=4, disc=0, one x-tie, one y-tie →
	// tau-b = 4 / sqrt((6-1)(6-1)) = 0.8.
	k, err := Kendall([]float64{1, 1, 2, 3}, []float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tau-b", k.Coeff, 0.8, 1e-12)
	// All-tied x is degenerate.
	deg, _ := Kendall([]float64{2, 2, 2, 2}, []float64{1, 2, 3, 4})
	if !math.IsNaN(deg.Coeff) || deg.PValue != 1 {
		t.Errorf("degenerate tau should be NaN/p=1, got %+v", deg)
	}
}

func TestKendallMatchesQuadratic(t *testing.T) {
	// The O(n log n) implementation must match a brute-force O(n^2) count.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(8)) // deliberately tie-heavy
			y[i] = float64(rng.Intn(8))
		}
		fast, err := Kendall(x, y)
		if err != nil {
			t.Fatal(err)
		}
		slow := kendallBrute(x, y)
		if math.IsNaN(fast.Coeff) != math.IsNaN(slow) {
			t.Fatalf("NaN mismatch: fast=%v slow=%v", fast.Coeff, slow)
		}
		if !math.IsNaN(slow) && math.Abs(fast.Coeff-slow) > 1e-10 {
			t.Fatalf("trial %d: fast=%.12f slow=%.12f x=%v y=%v", trial, fast.Coeff, slow, x, y)
		}
	}
}

// kendallBrute is the textbook O(n^2) tau-b.
func kendallBrute(x, y []float64) float64 {
	n := len(x)
	var conc, disc, tx, ty float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := x[i]-x[j], y[i]-y[j]
			switch {
			case dx == 0 && dy == 0:
				tx++
				ty++
			case dx == 0:
				tx++
			case dy == 0:
				ty++
			case dx*dy > 0:
				conc++
			default:
				disc++
			}
		}
	}
	n0 := float64(n) * float64(n-1) / 2
	den := math.Sqrt((n0 - tx) * (n0 - ty))
	if den == 0 {
		return math.NaN()
	}
	return (conc - disc) / den
}

func TestCorrelationsAgreeOnIndependentNoise(t *testing.T) {
	// Independent noise should rarely be significant; check the p-values are
	// roughly uniform by counting rejections at alpha = 0.2 over many trials.
	rng := rand.New(rand.NewSource(42))
	trials, rejected := 200, 0
	for i := 0; i < trials; i++ {
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64()
		}
		r, _ := Pearson(x, y)
		if r.Significant(0.2) {
			rejected++
		}
	}
	frac := float64(rejected) / float64(trials)
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("rejection rate at alpha=.2 was %.2f, want ~0.2", frac)
	}
}

func TestCoefficientsWithinBoundsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(5))
			y[i] = rng.NormFloat64()
		}
		for _, f := range []func(a, b []float64) (Result, error){Pearson, Spearman, Kendall} {
			r, err := f(x, y)
			if err != nil {
				return false
			}
			if !math.IsNaN(r.Coeff) && (r.Coeff < -1-1e-12 || r.Coeff > 1+1e-12) {
				return false
			}
			if r.PValue < 0 || r.PValue > 1 {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestACF(t *testing.T) {
	// AR(1)-ish deterministic series: x_t = 0.9 x_{t-1} has geometric ACF.
	n := 500
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	x[0] = rng.NormFloat64()
	for i := 1; i < n; i++ {
		x[i] = 0.9*x[i-1] + 0.1*rng.NormFloat64()
	}
	acf := ACF(x, 5)
	approx(t, "lag0", acf[0], 1, 1e-12)
	if acf[1] < 0.7 {
		t.Errorf("AR(1) lag-1 ACF = %g, want > 0.7", acf[1])
	}
	if acf[1] < acf[3] {
		t.Error("ACF should decay for AR(1)")
	}
	// Constant series.
	c := ACF([]float64{5, 5, 5, 5}, 2)
	if c[0] != 1 || c[1] != 0 {
		t.Errorf("constant ACF = %v", c)
	}
	// Empty series is all zeros.
	for _, v := range ACF(nil, 3) {
		if v != 0 {
			t.Error("empty ACF should be zeros")
		}
	}
}

func TestCCFDetectsLag(t *testing.T) {
	// y is x delayed by 3 → CCF should peak at lag +3 with x[t+3] ~ y[t]...
	// Using R's convention ccf(x,y) peaks at the lag where x leads y.
	n := 300
	rng := rand.New(rand.NewSource(4))
	base := make([]float64, n+3)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	x := base[3:] // x[t] = base[t+3]
	y := base[:n] // y[t] = base[t] = x[t-3]
	cc, err := CCF(x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	best, bestLag := -2.0, 0
	for k := -5; k <= 5; k++ {
		if v := cc[k+5]; v > best {
			best, bestLag = v, k
		}
	}
	if bestLag != -3 {
		t.Errorf("CCF peak at lag %d (%.2f), want -3", bestLag, best)
	}
	if best < 0.9 {
		t.Errorf("CCF peak = %g, want ~1", best)
	}
}

func TestCCFZeroLagMatchesPearson(t *testing.T) {
	x := []float64{1, 3, 2, 5, 4, 7, 6}
	y := []float64{2, 4, 3, 7, 5, 9, 6}
	cc, err := CCF(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := Pearson(x, y)
	approx(t, "lag0 vs pearson", cc[2], r.Coeff, 1e-12)
	if _, err := CCF(x, y[:3], 2); err != ErrLength {
		t.Errorf("want ErrLength, got %v", err)
	}
}

func TestWhiteNoiseBound(t *testing.T) {
	approx(t, "bound(100)", WhiteNoiseBound(100), 0.1959963985, 1e-9)
	if !math.IsInf(WhiteNoiseBound(0), 1) {
		t.Error("bound for n=0 should be +Inf")
	}
}

func TestLjungBox(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// White noise: should not reject.
	wn := make([]float64, 400)
	for i := range wn {
		wn[i] = rng.NormFloat64()
	}
	_, p, err := LjungBox(wn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("white noise rejected with p=%g", p)
	}
	// Strongly autocorrelated series: should reject decisively.
	ar := make([]float64, 400)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + 0.05*rng.NormFloat64()
	}
	_, p2, err := LjungBox(ar, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p2 > 1e-6 {
		t.Errorf("AR series not rejected, p=%g", p2)
	}
	if _, _, err := LjungBox([]float64{1, 2}, 5); err != ErrTooShort {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestPACFOfARProcess(t *testing.T) {
	// AR(1) with phi=0.8: PACF(1) ~ 0.8, PACF(k>1) ~ 0 — the classic
	// cut-off signature.
	rng := rand.New(rand.NewSource(8))
	n := 20000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.8*x[i-1] + rng.NormFloat64()
	}
	pacf := PACF(x, 5)
	approx(t, "pacf(1)", pacf[0], 0.8, 0.05)
	for k := 1; k < 5; k++ {
		if math.Abs(pacf[k]) > 0.05 {
			t.Errorf("pacf(%d) = %g, want ~0 (AR(1) cut-off)", k+1, pacf[k])
		}
	}
}

func TestPACFFirstLagEqualsACF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 500)
	for i := 1; i < len(x); i++ {
		x[i] = 0.5*x[i-1] + rng.NormFloat64()
	}
	acf := ACF(x, 1)
	pacf := PACF(x, 1)
	approx(t, "pacf(1)=acf(1)", pacf[0], acf[1], 1e-12)
	if PACF(x, 0) != nil {
		t.Error("maxLag < 1 should return nil")
	}
}

func TestPACFDegenerateSeries(t *testing.T) {
	// A constant series must not panic or emit NaNs.
	for _, v := range PACF([]float64{7, 7, 7, 7, 7}, 3) {
		if math.IsNaN(v) {
			t.Error("NaN in degenerate PACF")
		}
	}
}
