package corr

import (
	"math"

	"homesight/internal/stats"
	"homesight/internal/stats/dist"
)

// ACF returns the sample autocorrelation function of x at lags 0..maxLag
// using the standard biased estimator (covariances normalized by n), the
// convention of R's acf(). Lags beyond len(x)-1 are reported as 0.
func ACF(x []float64, maxLag int) []float64 {
	n := len(x)
	out := make([]float64, maxLag+1)
	if n == 0 {
		return out
	}
	m := stats.Mean(x)
	denom := 0.0
	for _, v := range x {
		denom += (v - m) * (v - m)
	}
	if denom == 0 {
		// A constant series is perfectly autocorrelated at lag 0 and
		// undefined elsewhere; report 1, 0, 0, ... to stay plot-friendly.
		out[0] = 1
		return out
	}
	for lag := 0; lag <= maxLag && lag < n; lag++ {
		num := 0.0
		for t := 0; t+lag < n; t++ {
			num += (x[t] - m) * (x[t+lag] - m)
		}
		out[lag] = num / denom
	}
	return out
}

// CCF returns the sample cross-correlation of x and y for lags
// -maxLag..maxLag, in that order (index i holds lag i-maxLag). A positive
// lag k correlates x[t+k] with y[t], matching R's ccf(x, y) convention.
// The two series must have equal length n; lags with |k| >= n are 0.
func CCF(x, y []float64, maxLag int) ([]float64, error) {
	if len(x) != len(y) {
		return nil, ErrLength
	}
	n := len(x)
	out := make([]float64, 2*maxLag+1)
	if n == 0 {
		return out, nil
	}
	mx, my := stats.Mean(x), stats.Mean(y)
	var sx, sy float64
	for i := range x {
		sx += (x[i] - mx) * (x[i] - mx)
		sy += (y[i] - my) * (y[i] - my)
	}
	denom := math.Sqrt(sx * sy)
	if denom == 0 {
		return out, nil
	}
	for k := -maxLag; k <= maxLag; k++ {
		if k >= n || -k >= n {
			continue
		}
		num := 0.0
		for t := 0; t < n; t++ {
			if t+k < 0 || t+k >= n {
				continue
			}
			num += (x[t+k] - mx) * (y[t] - my)
		}
		out[k+maxLag] = num / denom
	}
	return out, nil
}

// WhiteNoiseBound returns the approximate 95% significance bound
// ±1.96/sqrt(n) for sample autocorrelations of white noise; bars outside it
// are the "statistically significant autocorrelations" of Sec. 4.2.
func WhiteNoiseBound(n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 1.959963985 / math.Sqrt(float64(n))
}

// LjungBox performs the Ljung–Box portmanteau test that the first `lags`
// autocorrelations of x are jointly zero. It returns the Q statistic and
// its p-value from the chi-squared distribution with `lags` degrees of
// freedom.
func LjungBox(x []float64, lags int) (q, pValue float64, err error) {
	n := len(x)
	if n <= lags || lags < 1 {
		return 0, 0, ErrTooShort
	}
	acf := ACF(x, lags)
	for k := 1; k <= lags; k++ {
		q += acf[k] * acf[k] / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	pValue = dist.ChiSquared{DF: float64(lags)}.Survival(q)
	return q, pValue, nil
}
