// Package corr implements the three correlation coefficients the paper's
// similarity measure is built on — Pearson's r, Spearman's ρ and Kendall's
// τ-b — together with their significance tests, plus autocorrelation,
// cross-correlation and the Ljung–Box portmanteau test used in the
// preliminary analysis (Sec. 4.2).
package corr

import (
	"errors"
	"math"
	"sort"

	"homesight/internal/stats"
	"homesight/internal/stats/dist"
)

// ErrLength is returned when the two samples have different lengths.
var ErrLength = errors.New("corr: samples must have equal length")

// ErrTooShort is returned when a sample is too short for the statistic.
var ErrTooShort = errors.New("corr: sample too short")

// Result is a correlation coefficient together with its two-sided p-value
// under the null hypothesis of no association.
type Result struct {
	Coeff  float64
	PValue float64
	N      int
}

// Significant reports whether the null hypothesis of zero correlation is
// rejected at level alpha.
func (r Result) Significant(alpha float64) bool {
	return !math.IsNaN(r.Coeff) && r.PValue < alpha
}

// Pearson returns Pearson's product-moment correlation of x and y with the
// two-sided p-value from the exact t-distribution of
// t = r sqrt((n-2)/(1-r²)) under bivariate normality.
// Constant series give a NaN coefficient with p-value 1 (never significant),
// which is the behaviour Definition 1 needs for silent traffic windows.
func Pearson(x, y []float64) (Result, error) {
	if len(x) != len(y) {
		return Result{}, ErrLength
	}
	n := len(x)
	if n < 3 {
		return Result{}, ErrTooShort
	}
	mx, my := stats.Mean(x), stats.Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return Result{Coeff: math.NaN(), PValue: 1, N: n}, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding noise so the t transform stays finite.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return Result{Coeff: r, PValue: pValueFromR(r, n), N: n}, nil
}

// pValueFromR converts a correlation coefficient into a two-sided p-value
// via the t-distribution with n-2 degrees of freedom.
func pValueFromR(r float64, n int) float64 {
	if math.Abs(r) >= 1 {
		return 0
	}
	t := r * math.Sqrt(float64(n-2)/(1-r*r))
	return dist.StudentsT{DF: float64(n - 2)}.TwoSidedP(t)
}

// Spearman returns Spearman's rank correlation ρ with a two-sided p-value
// from the t-approximation on the ranks (the method used by R's cor.test
// for n > 1290 and a sound approximation for the window lengths homesight
// works at).
func Spearman(x, y []float64) (Result, error) {
	if len(x) != len(y) {
		return Result{}, ErrLength
	}
	if len(x) < 3 {
		return Result{}, ErrTooShort
	}
	rx, ry := stats.Ranks(x), stats.Ranks(y)
	return Pearson(rx, ry)
}

// Kendall returns Kendall's τ-b (tie-adjusted) with a two-sided p-value from
// the normal approximation with the tie-corrected null variance.
// The statistic is computed in O(n log n) via merge-sort inversion counting.
func Kendall(x, y []float64) (Result, error) {
	if len(x) != len(y) {
		return Result{}, ErrLength
	}
	n := len(x)
	if n < 3 {
		return Result{}, ErrTooShort
	}

	// Sort index pairs by x, breaking ties by y; discordant pairs are then
	// exactly the inversions of the y sequence among x-distinct pairs.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] { //homesight:ignore float-eq — exact tie grouping for τ-b
			return x[idx[a]] < x[idx[b]]
		}
		return y[idx[a]] < y[idx[b]]
	})
	ys := make([]float64, n)
	xs := make([]float64, n)
	for i, j := range idx {
		ys[i] = y[j]
		xs[i] = x[j]
	}

	n0 := float64(n) * float64(n-1) / 2
	n1 := tiePairSum(xs)             // pairs tied in x
	n2 := tiePairSum(sortedCopy(ys)) // pairs tied in y
	n3 := jointTiePairSum(xs, ys)    // pairs tied in both

	// Because the input is sorted by (x, y ascending), y is ascending within
	// every x-tie group, so x-tied pairs contribute no inversions: the
	// inversion count is exactly the number of strictly discordant pairs.
	discordant := float64(countInversions(ys))
	// Pairs untied in both coordinates: n0 - n1 - n2 + n3.
	untied := n0 - n1 - n2 + n3
	concordant := untied - discordant
	num := concordant - discordant

	den := math.Sqrt((n0 - n1) * (n0 - n2))
	if den == 0 {
		return Result{Coeff: math.NaN(), PValue: 1, N: n}, nil
	}
	tau := num / den
	if tau > 1 {
		tau = 1
	} else if tau < -1 {
		tau = -1
	}

	p := kendallPValue(xs, ys, num)
	return Result{Coeff: tau, PValue: p, N: n}, nil
}

// sortedCopy returns an ascending copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// tiePairSum returns sum over tie groups of t(t-1)/2 for a sorted slice.
func tiePairSum(sorted []float64) float64 {
	total := 0.0
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] { //homesight:ignore float-eq — exact tie grouping
			j++
		}
		t := float64(j - i + 1)
		total += t * (t - 1) / 2
		i = j + 1
	}
	return total
}

// jointTiePairSum returns the number of pairs tied in both coordinates.
// xs is sorted by (x, y), so joint ties are consecutive.
func jointTiePairSum(xs, ys []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); {
		j := i
		for j+1 < len(xs) && xs[j+1] == xs[i] && ys[j+1] == ys[i] { //homesight:ignore float-eq — exact tie grouping
			j++
		}
		t := float64(j - i + 1)
		total += t * (t - 1) / 2
		i = j + 1
	}
	return total
}

// countInversions counts inversions (pairs i<j with ys[i] > ys[j]) using
// merge sort in O(n log n). Equal values are not inversions.
func countInversions(ys []float64) int64 {
	buf := make([]float64, len(ys))
	work := make([]float64, len(ys))
	copy(work, ys)
	return mergeCount(work, buf)
}

func mergeCount(a, buf []float64) int64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += int64(mid - i)
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}

// kendallPValue computes the two-sided p-value of the concordant-minus-
// discordant statistic S under the null, using the normal approximation
// with the tie-corrected variance (Kendall 1970):
//
//	var(S) = [n(n-1)(2n+5) - Σt(t-1)(2t+5) - Σu(u-1)(2u+5)]/18
//	       + [Σt(t-1)(t-2) Σu(u-1)(u-2)] / (9 n(n-1)(n-2))
//	       + [Σt(t-1) Σu(u-1)] / (2 n(n-1))
func kendallPValue(xs, ys []float64, s float64) float64 {
	n := float64(len(xs))
	tx := tieGroupSizes(xs)
	ty := tieGroupSizes(sortedCopy(ys))

	sum := func(groups []float64, f func(t float64) float64) float64 {
		total := 0.0
		for _, t := range groups {
			total += f(t)
		}
		return total
	}
	v0 := n * (n - 1) * (2*n + 5)
	vt := sum(tx, func(t float64) float64 { return t * (t - 1) * (2*t + 5) })
	vu := sum(ty, func(t float64) float64 { return t * (t - 1) * (2*t + 5) })
	v1 := sum(tx, func(t float64) float64 { return t * (t - 1) }) *
		sum(ty, func(t float64) float64 { return t * (t - 1) })
	v2 := sum(tx, func(t float64) float64 { return t * (t - 1) * (t - 2) }) *
		sum(ty, func(t float64) float64 { return t * (t - 1) * (t - 2) })

	variance := (v0-vt-vu)/18 + v2/(9*n*(n-1)*(n-2)) + v1/(2*n*(n-1))
	if variance <= 0 {
		return 1
	}
	z := s / math.Sqrt(variance)
	return 2 * dist.StdNormal.Survival(math.Abs(z))
}

// tieGroupSizes returns the sizes of the tie groups of a sorted slice,
// including singleton groups (they contribute zero to every tie sum).
func tieGroupSizes(sorted []float64) []float64 {
	var groups []float64
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] { //homesight:ignore float-eq — exact tie grouping
			j++
		}
		groups = append(groups, float64(j-i+1))
		i = j + 1
	}
	return groups
}
