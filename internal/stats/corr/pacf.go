package corr

// PACF returns the sample partial autocorrelation function of x at lags
// 1..maxLag via the Durbin–Levinson recursion on the sample ACF. The PACF
// is the Box–Jenkins order-identification tool for AR models; on bursty
// traffic it confirms the paper's observation that low-order ARIMA
// structure carries almost no predictive power for the active bursts.
func PACF(x []float64, maxLag int) []float64 {
	if maxLag < 1 {
		return nil
	}
	acf := ACF(x, maxLag)
	pacf := make([]float64, maxLag)

	// Durbin–Levinson: phi[k][j] coefficients, phi[k][k] is the PACF at k.
	phi := make([]float64, maxLag+1)
	prev := make([]float64, maxLag+1)
	v := 1.0 // normalized innovation variance
	for k := 1; k <= maxLag; k++ {
		acc := acf[k]
		for j := 1; j < k; j++ {
			acc -= prev[j] * acf[k-j]
		}
		if v == 0 {
			// Degenerate (perfectly predictable) series: remaining partial
			// correlations are zero.
			break
		}
		reflection := acc / v
		phi[k] = reflection
		for j := 1; j < k; j++ {
			phi[j] = prev[j] - reflection*prev[k-j]
		}
		v *= 1 - reflection*reflection
		copy(prev, phi)
		pacf[k-1] = reflection
	}
	return pacf
}
