package stats

import "sort"

// Boxplot holds Tukey boxplot statistics: quartiles, whiskers and outliers.
// The paper uses the upper whisker as the per-device background-traffic
// threshold τ (Sec. 6.1): the interval between the whiskers contains the
// bulk of the (background-dominated) traffic mass, while active-usage bursts
// fall outside it.
type Boxplot struct {
	Q1, Median, Q3 float64
	IQR            float64
	// LowerWhisker is the smallest observation >= Q1 - K*IQR.
	LowerWhisker float64
	// UpperWhisker is the largest observation <= Q3 + K*IQR.
	UpperWhisker float64
	// Outliers are the observations beyond the whiskers, ascending.
	Outliers []float64
}

// DefaultWhiskerK is Tukey's conventional whisker multiplier.
const DefaultWhiskerK = 1.5

// NewBoxplot computes boxplot statistics for xs with whisker multiplier k
// (use DefaultWhiskerK for the Tukey convention). It returns ErrEmpty for an
// empty sample.
func NewBoxplot(xs []float64, k float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	b := Boxplot{
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}
	b.IQR = b.Q3 - b.Q1
	loFence := b.Q1 - k*b.IQR
	hiFence := b.Q3 + k*b.IQR

	// Whiskers extend to the most extreme points inside the fences.
	b.LowerWhisker = b.Q1
	b.UpperWhisker = b.Q3
	for _, x := range sorted {
		if x >= loFence {
			b.LowerWhisker = x
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			b.UpperWhisker = sorted[i]
			break
		}
	}
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b, nil
}

// WithoutOutliers returns the subset of xs that lies within the whiskers of
// its own boxplot — the paper's "boxplot without outliers" view (Fig. 1d).
func WithoutOutliers(xs []float64, k float64) []float64 {
	b, err := NewBoxplot(xs, k)
	if err != nil {
		return nil
	}
	kept := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= b.LowerWhisker && x <= b.UpperWhisker {
			kept = append(kept, x)
		}
	}
	return kept
}
