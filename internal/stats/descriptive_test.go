package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "popvar", PopVariance(xs), 4, 1e-12)
	approx(t, "var", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "sd", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate samples should yield NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum = %g/%g/%g", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R type-7: quantile(1:4, .25) = 1.75, median = 2.5.
	approx(t, "q25", Quantile(xs, 0.25), 1.75, 1e-12)
	approx(t, "median", Median(xs), 2.5, 1e-12)
	approx(t, "q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "q1", Quantile(xs, 1), 4, 1e-12)
	approx(t, "single", Quantile([]float64{42}, 0.3), 42, 1e-12)
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile must not reorder its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestZScores(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	zs := ZScores(xs)
	approx(t, "mean", Mean(zs), 0, 1e-12)
	approx(t, "popvar", PopVariance(zs), 1, 1e-12)
	// Constant series should become zeros, not NaNs.
	for _, z := range ZScores([]float64{7, 7, 7}) {
		if z != 0 {
			t.Error("constant series should z-normalize to zeros")
		}
	}
}

func TestRanks(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, "rank", ranks[i], want[i], 1e-12)
	}
	// All ties → everyone gets the average rank.
	for _, r := range Ranks([]float64{5, 5, 5}) {
		approx(t, "tie rank", r, 2, 1e-12)
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Sum of ranks is always n(n+1)/2 regardless of ties.
	err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, math.Mod(v, 10))
			}
		}
		if len(xs) == 0 {
			return true
		}
		n := float64(len(xs))
		return math.Abs(Sum(Ranks(xs))-n*(n+1)/2) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBoxplot(t *testing.T) {
	// 1..11 plus a far outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	b, err := NewBoxplot(xs, DefaultWhiskerK)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.UpperWhisker != 11 {
		t.Errorf("upper whisker = %g, want 11", b.UpperWhisker)
	}
	if b.LowerWhisker != 1 {
		t.Errorf("lower whisker = %g, want 1", b.LowerWhisker)
	}
	if _, err := NewBoxplot(nil, 1.5); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestBoxplotWhiskersAreObservations(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1000))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := NewBoxplot(xs, DefaultWhiskerK)
		if err != nil {
			return false
		}
		lowerSeen, upperSeen := false, false
		for _, x := range xs {
			if x == b.LowerWhisker {
				lowerSeen = true
			}
			if x == b.UpperWhisker {
				upperSeen = true
			}
		}
		return lowerSeen && upperSeen && b.LowerWhisker <= b.UpperWhisker
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWithoutOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 1000}
	kept := WithoutOutliers(xs, DefaultWhiskerK)
	if len(kept) != 5 {
		t.Errorf("kept %d values, want 5 (%v)", len(kept), kept)
	}
	if WithoutOutliers(nil, 1.5) != nil {
		t.Error("empty input should return nil")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 1.5, 2, 5}, 0, 2, 4)
	wantCounts := []int{1, 1, 1, 2} // 5 is out of range; 2 lands in last bin
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total != 5 {
		t.Errorf("total = %d, want 5", h.Total)
	}
	// Density integrates to 1 over in-range data.
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * h.Width
	}
	approx(t, "density integral", sum, 1, 1e-12)
	approx(t, "bin center", h.BinCenter(0), 0.25, 1e-12)
}

func TestAutoHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := AutoHistogram(xs)
	if h == nil || len(h.Counts) < 5 {
		t.Fatalf("expected a real histogram, got %+v", h)
	}
	if AutoHistogram(nil) != nil {
		t.Error("empty input should return nil")
	}
	// Constant input must not panic and must produce one usable bin range.
	hc := AutoHistogram([]float64{3, 3, 3})
	if hc.Total != 3 {
		t.Errorf("constant histogram total = %d, want 3", hc.Total)
	}
}

func TestKDE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k := NewKDE(xs, 0)
	if k == nil {
		t.Fatal("nil KDE")
	}
	// Density at the mode of a standard normal is ~0.3989.
	approx(t, "pdf(0)", k.PDF(0), 0.3989, 0.05)
	if k.PDF(0) < k.PDF(3) {
		t.Error("density should decay away from the mode")
	}
	// Integral over a wide grid should be ~1.
	gx, gy := k.Evaluate(-6, 6, 601)
	sum := 0.0
	for i := 1; i < len(gx); i++ {
		sum += (gy[i] + gy[i-1]) / 2 * (gx[i] - gx[i-1])
	}
	approx(t, "integral", sum, 1, 0.01)
	if NewKDE(nil, 0) != nil {
		t.Error("empty KDE should be nil")
	}
}

func TestSilvermanBandwidthConstant(t *testing.T) {
	if bw := SilvermanBandwidth([]float64{5, 5, 5, 5}); bw != 1 {
		t.Errorf("constant-series bandwidth = %g, want fallback 1", bw)
	}
}

func TestFitZipf(t *testing.T) {
	// Exact power law: value = rank^(-1.2) should recover exponent 1.2, R2 ~ 1.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Pow(float64(i+1), -1.2)
	}
	fit := FitZipf(xs)
	approx(t, "exponent", fit.Exponent, 1.2, 1e-9)
	approx(t, "r2", fit.R2, 1, 1e-9)
	if fit.N != 200 {
		t.Errorf("N = %d, want 200", fit.N)
	}
	// Uniform values are a poor power law: exponent near 0.
	flat := FitZipf([]float64{5, 5, 5, 5, 5})
	approx(t, "flat exponent", flat.Exponent, 0, 1e-9)
	// Degenerate inputs.
	if got := FitZipf([]float64{-1, 0}); got.N != 0 {
		t.Errorf("non-positive values should be ignored, got N=%d", got.N)
	}
}
