// Package stats implements the descriptive statistics used by the homesight
// analysis framework: moments, quantiles, boxplot statistics (the basis of
// the paper's background-traffic threshold), histograms, Gaussian kernel
// density estimation, and a Zipf tail fit. Everything is stdlib-only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (denominator n-1).
// It returns NaN for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population variance (denominator n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// Min returns the smallest value in xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the sample median, or NaN for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the p-th sample quantile of xs using linear interpolation
// between order statistics (type 7, the R default). p is clamped to [0, 1].
// It returns NaN for an empty slice.
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted is Quantile for an already-sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the five-number summary plus moments of a sample.
type Summary struct {
	N               int
	Mean, StdDev    float64
	Min, Q1, Median float64
	Q3, Max         float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}, nil
}

// ZScores returns the z-normalized copy of xs: (x - mean) / stddev.
// If the standard deviation is zero (constant series) it returns a slice of
// zeros, which keeps downstream correlation code well-defined.
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	m := Mean(xs)
	sd := math.Sqrt(PopVariance(xs))
	if sd == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// Ranks returns the fractional ranks of xs (1-based, ties receive the
// average rank), the form required by Spearman's correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] { //homesight:ignore float-eq — rank ties are exact equality
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
