package stats

import "math"

// KDE is a Gaussian kernel density estimator, the tool the paper uses to
// approximate and compare the probability density functions of traffic time
// series (Fig. 1a).
type KDE struct {
	sample    []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over xs with the given bandwidth. If
// bandwidth <= 0, Silverman's rule of thumb is used:
// h = 0.9 * min(sd, IQR/1.34) * n^(-1/5).
// It returns nil for an empty sample.
func NewKDE(xs []float64, bandwidth float64) *KDE {
	if len(xs) == 0 {
		return nil
	}
	sample := make([]float64, len(xs))
	copy(sample, xs)
	if bandwidth <= 0 {
		bandwidth = SilvermanBandwidth(xs)
	}
	return &KDE{sample: sample, bandwidth: bandwidth}
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for xs.
// Degenerate spreads fall back to 1 so the estimator stays usable on
// constant series.
func SilvermanBandwidth(xs []float64) float64 {
	sd := StdDev(xs)
	b, err := NewBoxplot(xs, DefaultWhiskerK)
	if err != nil {
		return 1
	}
	spread := sd
	if iqrScaled := b.IQR / 1.34; iqrScaled > 0 && (iqrScaled < spread || math.IsNaN(spread) || spread == 0) {
		spread = iqrScaled
	}
	if spread <= 0 || math.IsNaN(spread) {
		return 1
	}
	return 0.9 * spread * math.Pow(float64(len(xs)), -0.2)
}

// Bandwidth returns the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// PDF returns the estimated density at x.
func (k *KDE) PDF(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	sum := 0.0
	for _, s := range k.sample {
		z := (x - s) / k.bandwidth
		sum += math.Exp(-z * z / 2)
	}
	return sum * invSqrt2Pi / (float64(len(k.sample)) * k.bandwidth)
}

// Evaluate returns the density on a regular grid of n points over [lo, hi].
// It panics if n < 2.
func (k *KDE) Evaluate(lo, hi float64, n int) (xs, ys []float64) {
	if n < 2 {
		panic("stats: KDE.Evaluate requires n >= 2")
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.PDF(xs[i])
	}
	return xs, ys
}
