// Package dist provides the probability distributions needed by the
// homesight hypothesis tests: Normal, Student's t, Chi-squared, F,
// Kolmogorov, and Zipf. Each distribution exposes CDF and survival
// functions; the continuous ones also expose densities and quantiles.
//
// The implementations are exact transcriptions of the classical identities
// in terms of the regularized incomplete beta and gamma functions (package
// specfn) and are validated against published reference values in the tests.
package dist

import (
	"math"

	"homesight/internal/stats/specfn"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * specfn.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Survival returns P(X > x) with full precision in the upper tail.
func (n Normal) Survival(x float64) float64 {
	return 0.5 * specfn.Erfc((x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the value q such that CDF(q) = p.
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*math.Sqrt2*specfn.InvErf(2*p-1)
}

// StudentsT is Student's t distribution with DF degrees of freedom.
type StudentsT struct {
	DF float64
}

// PDF returns the density at x.
func (t StudentsT) PDF(x float64) float64 {
	v := t.DF
	return math.Exp(-(v+1)/2*math.Log(1+x*x/v) - 0.5*math.Log(v) - specfn.LogBeta(0.5, v/2))
}

// CDF returns P(T <= x) via the incomplete beta identity.
func (t StudentsT) CDF(x float64) float64 {
	if x == 0 {
		return 0.5
	}
	v := t.DF
	ib := specfn.RegIncBeta(v/2, 0.5, v/(v+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// Survival returns P(T > x).
func (t StudentsT) Survival(x float64) float64 { return t.CDF(-x) }

// TwoSidedP returns P(|T| >= |x|), the two-sided p-value for statistic x.
func (t StudentsT) TwoSidedP(x float64) float64 {
	v := t.DF
	return specfn.RegIncBeta(v/2, 0.5, v/(v+x*x))
}

// Quantile returns the value q such that CDF(q) = p.
func (t StudentsT) Quantile(p float64) float64 {
	if p == 0.5 { //homesight:ignore float-eq — exact median short-circuit
		return 0
	}
	v := t.DF
	// Invert the incomplete beta identity used in CDF.
	var tail float64
	if p > 0.5 {
		tail = 2 * (1 - p)
	} else {
		tail = 2 * p
	}
	x := specfn.InvRegIncBeta(v/2, 0.5, tail)
	q := math.Sqrt(v*(1-x)/x + 0)
	if x == 0 {
		q = math.Inf(1)
	}
	if p < 0.5 {
		return -q
	}
	return q
}

// ChiSquared is the chi-squared distribution with DF degrees of freedom.
type ChiSquared struct {
	DF float64
}

// PDF returns the density at x.
func (c ChiSquared) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	k := c.DF / 2
	lg, _ := math.Lgamma(k)
	return math.Exp((k-1)*math.Log(x) - x/2 - k*math.Ln2 - lg)
}

// CDF returns P(X <= x).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfn.RegLowerIncGamma(c.DF/2, x/2)
}

// Survival returns P(X > x).
func (c ChiSquared) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return specfn.RegUpperIncGamma(c.DF/2, x/2)
}

// F is the F distribution with D1 and D2 degrees of freedom.
type F struct {
	D1, D2 float64
}

// CDF returns P(X <= x).
func (f F) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return specfn.RegIncBeta(f.D1/2, f.D2/2, f.D1*x/(f.D1*x+f.D2))
}

// Survival returns P(X > x).
func (f F) Survival(x float64) float64 { return 1 - f.CDF(x) }

// Kolmogorov is the asymptotic Kolmogorov distribution of the scaled
// Kolmogorov–Smirnov statistic sqrt(n) * D_n.
type Kolmogorov struct{}

// CDF returns P(K <= x) using the theta-function series
// K(x) = 1 - 2 sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2).
func (Kolmogorov) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < 0.3 {
		// The alternating series converges slowly for tiny x; use the
		// complementary Jacobi theta expansion which is sharp there.
		t := math.Exp(-math.Pi * math.Pi / (8 * x * x))
		sum := 0.0
		for k := 0; k < 20; k++ {
			m := 2*float64(k) + 1
			sum += math.Pow(t, m*m)
		}
		return math.Sqrt(2*math.Pi) / x * sum
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*x*x)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-16 {
			break
		}
	}
	v := 1 - 2*sum
	return math.Max(0, math.Min(1, v))
}

// Survival returns P(K > x).
func (k Kolmogorov) Survival(x float64) float64 { return 1 - k.CDF(x) }

// Zipf is the Zipf distribution over ranks {1, ..., N} with exponent S:
// P(X = k) proportional to k^(-S). It models the heavy concentration of
// low traffic values observed in the wireless traces (Sec. 4.1 of the
// paper).
type Zipf struct {
	S float64
	N int

	// norm caches the normalization constant H_{N,S}.
	norm float64
}

// NewZipf returns a Zipf distribution with exponent s over n ranks.
// It panics if s <= 0 or n < 1.
func NewZipf(s float64, n int) *Zipf {
	if s <= 0 || n < 1 {
		panic("dist: NewZipf requires s > 0 and n >= 1")
	}
	z := &Zipf{S: s, N: n}
	for k := 1; k <= n; k++ {
		z.norm += math.Pow(float64(k), -s)
	}
	return z
}

// PMF returns P(X = k); zero outside {1, ..., N}.
func (z *Zipf) PMF(k int) float64 {
	if k < 1 || k > z.N {
		return 0
	}
	return math.Pow(float64(k), -z.S) / z.norm
}

// CDF returns P(X <= k).
func (z *Zipf) CDF(k int) float64 {
	if k < 1 {
		return 0
	}
	if k > z.N {
		k = z.N
	}
	sum := 0.0
	for i := 1; i <= k; i++ {
		sum += math.Pow(float64(i), -z.S)
	}
	return sum / z.norm
}
