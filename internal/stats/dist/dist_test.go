package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestNormalCDF(t *testing.T) {
	n := StdNormal
	approx(t, "Phi(0)", n.CDF(0), 0.5, 1e-14)
	approx(t, "Phi(1.96)", n.CDF(1.959963985), 0.975, 1e-9)
	approx(t, "Phi(-1)", n.CDF(-1), 0.15865525393146, 1e-10)
	approx(t, "Phi(2.5758)", n.CDF(2.5758293), 0.995, 1e-7)
	scaled := Normal{Mu: 10, Sigma: 2}
	approx(t, "shifted", scaled.CDF(12), n.CDF(1), 1e-12)
}

func TestNormalQuantileRoundtrip(t *testing.T) {
	n := Normal{Mu: -3, Sigma: 0.7}
	for _, p := range []float64{0.001, 0.025, 0.5, 0.9, 0.999} {
		approx(t, "roundtrip", n.CDF(n.Quantile(p)), p, 1e-10)
	}
	approx(t, "z(.975)", StdNormal.Quantile(0.975), 1.959963985, 1e-7)
}

func TestNormalPDFIntegratesToCDF(t *testing.T) {
	// Trapezoid integration of the density should match the CDF increment.
	n := Normal{Mu: 1, Sigma: 2}
	const a, b = -2.0, 3.0
	const steps = 20000
	h := (b - a) / steps
	sum := (n.PDF(a) + n.PDF(b)) / 2
	for i := 1; i < steps; i++ {
		sum += n.PDF(a + float64(i)*h)
	}
	approx(t, "integral", sum*h, n.CDF(b)-n.CDF(a), 1e-8)
}

func TestStudentsT(t *testing.T) {
	// Reference values: pt(2.0, df=10) = 0.96330598, pt(1.0, df=1) = 0.75.
	approx(t, "pt(2,10)", StudentsT{DF: 10}.CDF(2), 0.96330598, 1e-7)
	approx(t, "pt(1,1)", StudentsT{DF: 1}.CDF(1), 0.75, 1e-10)
	approx(t, "pt(0,5)", StudentsT{DF: 5}.CDF(0), 0.5, 1e-14)
	// t with df=1 is Cauchy: CDF(x) = 1/2 + atan(x)/pi.
	for _, x := range []float64{-3, -0.5, 0.2, 4} {
		approx(t, "cauchy", StudentsT{DF: 1}.CDF(x), 0.5+math.Atan(x)/math.Pi, 1e-10)
	}
	// Large df converges to normal.
	approx(t, "t~N", StudentsT{DF: 1e6}.CDF(1.2), StdNormal.CDF(1.2), 1e-5)
}

func TestStudentsTTwoSided(t *testing.T) {
	d := StudentsT{DF: 7}
	for _, x := range []float64{0.3, 1.5, 2.9} {
		want := 2 * d.Survival(x)
		approx(t, "two-sided", d.TwoSidedP(x), want, 1e-12)
		approx(t, "symmetric", d.TwoSidedP(-x), want, 1e-12)
	}
}

func TestStudentsTQuantile(t *testing.T) {
	// qt(0.975, 10) = 2.228139.
	approx(t, "qt(.975,10)", StudentsT{DF: 10}.Quantile(0.975), 2.228139, 1e-5)
	for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		d := StudentsT{DF: 4}
		approx(t, "roundtrip", d.CDF(d.Quantile(p)), p, 1e-9)
	}
}

func TestChiSquared(t *testing.T) {
	// Chi2 with 2 df is Exp(1/2): CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 2, 7} {
		approx(t, "chi2(2)", ChiSquared{DF: 2}.CDF(x), 1-math.Exp(-x/2), 1e-12)
	}
	// pchisq(3.841459, 1) = 0.95.
	approx(t, "chi2(1) crit", ChiSquared{DF: 1}.CDF(3.841459), 0.95, 1e-6)
	approx(t, "survival", ChiSquared{DF: 5}.Survival(1.145476), 0.95, 1e-6)
}

func TestFDistribution(t *testing.T) {
	// F(1, d) equals t(d)^2: P(F <= x) = P(|T| <= sqrt(x)).
	td := StudentsT{DF: 8}
	for _, x := range []float64{0.3, 1, 4} {
		want := 1 - td.TwoSidedP(math.Sqrt(x))
		approx(t, "F=t^2", F{D1: 1, D2: 8}.CDF(x), want, 1e-10)
	}
	// qf(0.95, 3, 10) = 3.708265 → CDF there is 0.95.
	approx(t, "F crit", F{D1: 3, D2: 10}.CDF(3.708265), 0.95, 1e-6)
}

func TestKolmogorov(t *testing.T) {
	k := Kolmogorov{}
	// Classic critical value: K(1.3581) ~ 0.95, K(1.2238) ~ 0.90,
	// K(1.6276) ~ 0.99 (two-sided KS asymptotic quantiles).
	approx(t, "K(1.3581)", k.CDF(1.3581), 0.95, 5e-4)
	approx(t, "K(1.2238)", k.CDF(1.2238), 0.90, 5e-4)
	approx(t, "K(1.6276)", k.CDF(1.6276), 0.99, 5e-4)
	if k.CDF(0) != 0 {
		t.Error("K(0) should be 0")
	}
	if got := k.CDF(5); math.Abs(got-1) > 1e-12 {
		t.Errorf("K(5) = %g, want ~1", got)
	}
	// The two branches must agree near the switch point.
	approx(t, "branch continuity", k.CDF(0.2999999), k.CDF(0.3000001), 1e-6)
}

func TestKolmogorovMonotoneQuick(t *testing.T) {
	k := Kolmogorov{}
	err := quick.Check(func(u float64) bool {
		x := math.Abs(math.Mod(u, 3))
		a, b := k.CDF(x), k.CDF(x+0.01)
		return b >= a-1e-12 && a >= 0 && b <= 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestZipf(t *testing.T) {
	z := NewZipf(1.0, 4)
	// H = 1 + 1/2 + 1/3 + 1/4 = 25/12.
	approx(t, "pmf(1)", z.PMF(1), 12.0/25.0, 1e-12)
	approx(t, "pmf(2)", z.PMF(2), 6.0/25.0, 1e-12)
	approx(t, "cdf(N)", z.CDF(4), 1, 1e-12)
	if z.PMF(0) != 0 || z.PMF(5) != 0 {
		t.Error("PMF outside support should be 0")
	}
	// Heavier exponent concentrates more mass at rank 1.
	if NewZipf(2, 100).PMF(1) <= NewZipf(1, 100).PMF(1) {
		t.Error("larger exponent should concentrate mass at rank 1")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 10)
}
