package regress

import (
	"math"
	"math/rand"
	"testing"
)

// goldenSystem regenerates the fixed random system whose fit was
// recorded before the flat-buffer/scaled-norm rewrite. The goldens pin
// the rewrite to the old numerics at ±1e-12.
func goldenSystem() (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(424242))
	const n, p = 400, 5
	truth := []float64{0.7, 1.3, -0.45, 0.08, -2.2}
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		row[0] = 1
		for j := 1; j < p; j++ {
			row[j] = rng.NormFloat64() * float64(j)
		}
		x[i] = row
		v := 0.0
		for j, c := range truth {
			v += c * row[j]
		}
		y[i] = v + 0.5*rng.NormFloat64()
	}
	return x, y
}

// goldenFit holds the pre-optimization OLS output for goldenSystem,
// captured from the row-major math.Hypot implementation this package
// shipped before the workspace rewrite.
var goldenFit = struct {
	coeffs [5][2]float64 // {coefficient, stderr}
	sigma2 float64
	r2     float64
}{
	coeffs: [5][2]float64{
		{0.65249826858440929, 0.025558372116007599},
		{1.2858506178947133, 0.02541397184497577},
		{-0.46455264362917098, 0.01289205026987583},
		{0.090399766833779011, 0.0086730669974340192},
		{-2.1942205453320405, 0.0062734366253343948},
	},
	sigma2: 0.26078343230261553,
	r2:     0.99682122643687987,
}

func TestOLSMatchesPreOptimizationGoldens(t *testing.T) {
	x, y := goldenSystem()
	check := func(name string, m *Model) {
		t.Helper()
		const tol = 1e-12
		for j, want := range goldenFit.coeffs {
			if got := m.Coeffs[j]; math.Abs(got-want[0]) > tol {
				t.Errorf("%s: coeff[%d] = %.17g, golden %.17g (|diff| %g)", name, j, got, want[0], math.Abs(got-want[0]))
			}
			if got := m.StdErrs[j]; math.Abs(got-want[1]) > tol {
				t.Errorf("%s: stderr[%d] = %.17g, golden %.17g (|diff| %g)", name, j, got, want[1], math.Abs(got-want[1]))
			}
		}
		if math.Abs(m.Sigma2-goldenFit.sigma2) > tol {
			t.Errorf("%s: sigma2 = %.17g, golden %.17g", name, m.Sigma2, goldenFit.sigma2)
		}
		if math.Abs(m.R2-goldenFit.r2) > tol {
			t.Errorf("%s: r2 = %.17g, golden %.17g", name, m.R2, goldenFit.r2)
		}
	}

	m, err := OLS(x, y)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	check("OLS", m)

	// The workspace paths must agree with the one-shot fit exactly.
	var w Workspace
	m2, err := w.Fit(x, y)
	if err != nil {
		t.Fatalf("Workspace.Fit: %v", err)
	}
	check("Workspace.Fit", m2)

	n, p := len(x), len(x[0])
	design, resp := w.Design(n, p)
	for i, row := range x {
		copy(design[i*p:(i+1)*p], row)
	}
	copy(resp, y)
	m3, err := w.FitDesign()
	if err != nil {
		t.Fatalf("FitDesign: %v", err)
	}
	check("FitDesign", m3)
}

// TestWorkspaceFitZeroAllocs is the allocation contract for the hot
// path: after the first fit sizes the buffers, repeated fits on the
// same workspace allocate nothing.
func TestWorkspaceFitZeroAllocs(t *testing.T) {
	x, y := goldenSystem()
	var w Workspace
	if _, err := w.Fit(x, y); err != nil { // size the buffers
		t.Fatalf("warm-up fit: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.Fit(x, y); err != nil {
			t.Fatalf("fit: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Workspace.Fit allocates %v objects per fit, want 0", allocs)
	}

	n, p := len(x), len(x[0])
	allocs = testing.AllocsPerRun(20, func() {
		design, resp := w.Design(n, p)
		for i, row := range x {
			copy(design[i*p:(i+1)*p], row)
		}
		copy(resp, y)
		if _, err := w.FitDesign(); err != nil {
			t.Fatalf("fit: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Design+FitDesign allocates %v objects per fit, want 0", allocs)
	}
}

// TestWorkspaceRecoversAfterError ensures a failed fit (singular or
// bad shape) leaves the workspace usable.
func TestWorkspaceRecoversAfterError(t *testing.T) {
	var w Workspace
	bad := [][]float64{{1, 2}, {2, 4}, {3, 6}} // rank 1
	if _, err := w.Fit(bad, []float64{1, 2, 3}); err != ErrSingular {
		t.Fatalf("singular fit err = %v, want ErrSingular", err)
	}
	x, y := goldenSystem()
	m, err := w.Fit(x, y)
	if err != nil {
		t.Fatalf("fit after error: %v", err)
	}
	if math.Abs(m.Coeffs[0]-goldenFit.coeffs[0][0]) > 1e-12 {
		t.Fatalf("fit after error diverged: coeff[0] = %v", m.Coeffs[0])
	}
}

func BenchmarkWorkspaceFit(b *testing.B) {
	x, y := goldenSystem()
	var w Workspace
	if _, err := w.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOLSOneShot(b *testing.B) {
	x, y := goldenSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OLS(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
