// Package regress implements ordinary least squares via Householder QR
// decomposition. It is the numerical substrate for the unit-root tests
// (ADF, KPSS) and the autoregressive forecaster used by homesight.
//
// The fit is allocation-aware: a Workspace owns every buffer a fit
// needs (the QR working copy, the reflector scratch, the result
// slices), so hot callers like the ADF loop reuse one workspace across
// fits and pay zero allocations per fit. The one-shot OLS helper wraps
// a private workspace, so casual callers keep an independent Model.
package regress

import (
	"errors"
	"math"
)

// ErrShape is returned when the design matrix and response disagree or the
// system is under-determined.
var ErrShape = errors.New("regress: invalid design shape")

// ErrSingular is returned when the design matrix is (numerically) rank
// deficient.
var ErrSingular = errors.New("regress: singular design matrix")

// Model is a fitted ordinary-least-squares model.
type Model struct {
	// Coeffs are the fitted coefficients, one per design column.
	Coeffs []float64
	// StdErrs are the coefficient standard errors.
	StdErrs []float64
	// Residuals are y - X·beta.
	Residuals []float64
	// Sigma2 is the unbiased residual variance estimate (RSS / (n - p)).
	Sigma2 float64
	// R2 is the coefficient of determination against the mean-only model.
	R2 float64
	// N and P are the number of observations and predictors.
	N, P int
}

// OLS fits y = X·beta + eps by least squares. X is row-major: X[i] is the
// i-th observation's predictor vector (include a column of ones for an
// intercept). It requires len(X) == len(y) and n > p. The returned Model
// owns its slices; for repeated fits on the hot path use a Workspace.
func OLS(x [][]float64, y []float64) (*Model, error) {
	var w Workspace
	return w.Fit(x, y)
}

// Workspace holds the reusable buffers of repeated OLS fits: the
// column-major QR working copy, reflector scratch, and the Model result
// storage. The zero value is ready to use. A Workspace is not safe for
// concurrent use, and the Model returned by its Fit methods aliases the
// workspace buffers — it is valid only until the next fit on the same
// workspace. Callers that need the result to outlive the workspace must
// copy it (or use the one-shot OLS).
type Workspace struct {
	// design is the row-major n×p original design: either filled by the
	// caller through Design, or copied from Fit's [][]float64 argument.
	// It survives the factorization so residuals and R² come from the
	// original data, not the reflector-overwritten copy.
	design []float64
	// y is the response; like design, it is preserved across the fit.
	y []float64
	// qr is the column-major n×p working copy consumed by the
	// factorization. Column-major is deliberate: every Householder inner
	// loop walks one column, so the hot loops run over contiguous
	// memory instead of striding across row slices.
	qr []float64
	// rdiag, scale and rinv are the R diagonal, the original column
	// norms (rank-tolerance scale) and the p×p inverse of R.
	rdiag, scale, rinv []float64

	coeffs, stderrs, resid []float64
	model                  Model
	n, p                   int
}

// grow resizes buf to n, reusing capacity.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Design returns the workspace's row-major n×p design buffer and
// length-n response buffer, sized (and reused) for the next FitDesign
// call. The caller fills both and calls FitDesign; this is how the ADF
// loop builds its lagged-difference design with no per-fit allocation.
// The buffers' previous contents are unspecified.
func (w *Workspace) Design(n, p int) (design, y []float64) {
	w.n, w.p = n, p
	w.design = grow(w.design, n*p)
	w.y = grow(w.y, n)
	return w.design, w.y
}

// FitDesign fits the design prepared by the last Design call. The
// returned Model aliases workspace storage (see Workspace).
func (w *Workspace) FitDesign() (*Model, error) {
	n, p := w.n, w.p
	if n == 0 || p == 0 || n <= p {
		return nil, ErrShape
	}
	return w.fit()
}

// Fit fits y = X·beta + eps, copying the row-major X into the
// workspace. It validates shapes exactly like OLS. The returned Model
// aliases workspace storage (see Workspace).
func (w *Workspace) Fit(x [][]float64, y []float64) (*Model, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, ErrShape
	}
	p := len(x[0])
	if p == 0 || n <= p {
		return nil, ErrShape
	}
	for _, row := range x {
		if len(row) != p {
			return nil, ErrShape
		}
	}
	design, resp := w.Design(n, p)
	for i, row := range x {
		copy(design[i*p:(i+1)*p], row)
	}
	copy(resp, y)
	return w.fit()
}

// colNorm computes the Euclidean norm of v without overflow by scaling
// with the max magnitude — the sum-of-squares replacement for the old
// per-element math.Hypot chain, which dominated the fit's inner loops.
func colNorm(v []float64) float64 {
	amax := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > amax {
			amax = a
		}
	}
	if amax == 0 || math.IsInf(amax, 0) {
		return amax
	}
	ssq := 0.0
	for _, x := range v {
		r := x / amax
		ssq += r * r
	}
	return amax * math.Sqrt(ssq)
}

// fit runs the Householder QR factorization and fills the workspace
// model. w.design/w.y hold the original system; w.qr is overwritten.
func (w *Workspace) fit() (*Model, error) {
	n, p := w.n, w.p
	design, y := w.design, w.y

	// Transpose the row-major design into the column-major working copy
	// and copy the response: the factorization consumes both.
	w.qr = grow(w.qr, n*p)
	qr := w.qr
	for i := 0; i < n; i++ {
		row := design[i*p : (i+1)*p]
		for j, v := range row {
			qr[j*n+i] = v
		}
	}
	w.resid = grow(w.resid, n)
	b := w.resid // holds Q'b during the factorization, residuals after
	copy(b, y)

	// Original column norms provide the scale for the rank tolerance.
	w.scale = grow(w.scale, p)
	for j := 0; j < p; j++ {
		w.scale[j] = colNorm(qr[j*n : j*n+n])
		if w.scale[j] == 0 {
			return nil, ErrSingular
		}
	}

	// rdiag collects the diagonal of R.
	w.rdiag = grow(w.rdiag, p)
	rdiag := w.rdiag
	for k := 0; k < p; k++ {
		ck := qr[k*n : k*n+n]
		// Norm of column k below the diagonal.
		norm := colNorm(ck[k:])
		if norm <= 1e-12*w.scale[k] {
			return nil, ErrSingular
		}
		if ck[k] < 0 {
			norm = -norm
		}
		inv := 1 / norm
		for i := k; i < n; i++ {
			ck[i] *= inv
		}
		ck[k] += 1
		akk := ck[k]

		// Apply the reflector to the remaining columns and to b. Both
		// inner loops are contiguous column walks.
		for j := k + 1; j < p; j++ {
			cj := qr[j*n : j*n+n]
			s := 0.0
			for i := k; i < n; i++ {
				s += ck[i] * cj[i]
			}
			s = -s / akk
			for i := k; i < n; i++ {
				cj[i] += s * ck[i]
			}
		}
		s := 0.0
		for i := k; i < n; i++ {
			s += ck[i] * b[i]
		}
		s = -s / akk
		for i := k; i < n; i++ {
			b[i] += s * ck[i]
		}
		rdiag[k] = -norm
	}

	// Back substitution: R beta = Q'b (upper triangle of qr, diagonal
	// rdiag). R's strict upper part sits at qr[j*n+k] for row k < col j.
	w.coeffs = grow(w.coeffs, p)
	beta := w.coeffs
	for k := p - 1; k >= 0; k-- {
		if rdiag[k] == 0 || math.Abs(rdiag[k]) < 1e-300 {
			return nil, ErrSingular
		}
		s := b[k]
		for j := k + 1; j < p; j++ {
			s -= qr[j*n+k] * beta[j]
		}
		beta[k] = s / rdiag[k]
	}

	// Residuals and RSS from the original data; b is reused as the
	// residual buffer now that Q'b is spent.
	rss := 0.0
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	tss := 0.0
	for i := 0; i < n; i++ {
		row := design[i*p : (i+1)*p]
		pred := 0.0
		for j, v := range row {
			pred += v * beta[j]
		}
		r := y[i] - pred
		b[i] = r
		rss += r * r
		tss += (y[i] - meanY) * (y[i] - meanY)
	}

	m := &w.model
	*m = Model{Coeffs: beta, Residuals: b, N: n, P: p}
	m.Sigma2 = rss / float64(n-p)
	if tss > 0 {
		m.R2 = 1 - rss/tss
	}

	// Standard errors: sigma2 * diag((X'X)^-1) via R inverse:
	// (X'X)^-1 = R^-1 R^-T.
	if !w.invertUpper() {
		return nil, ErrSingular
	}
	w.stderrs = grow(w.stderrs, p)
	for j := 0; j < p; j++ {
		sum := 0.0
		for k := j; k < p; k++ {
			v := w.rinv[j*p+k]
			sum += v * v
		}
		w.stderrs[j] = math.Sqrt(m.Sigma2 * sum)
	}
	m.StdErrs = w.stderrs
	return m, nil
}

// invertUpper inverts the upper-triangular R held in the factorized
// workspace (strict upper part in qr column-major, diagonal in rdiag)
// into w.rinv, row-major p×p. Returns false on a zero diagonal.
func (w *Workspace) invertUpper() bool {
	n, p := w.n, w.p
	w.rinv = grow(w.rinv, p*p)
	inv := w.rinv
	for i := range inv {
		inv[i] = 0
	}
	// r(i,j) = rdiag[i] on the diagonal, qr[j*n+i] strictly above it.
	r := func(i, j int) float64 {
		if i == j {
			return w.rdiag[i]
		}
		return w.qr[j*n+i]
	}
	for j := p - 1; j >= 0; j-- {
		if w.rdiag[j] == 0 {
			return false
		}
		inv[j*p+j] = 1 / w.rdiag[j]
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += r(i, k) * inv[k*p+j]
			}
			inv[i*p+j] = -s / w.rdiag[i]
		}
	}
	return true
}

// TStats returns the coefficient t-statistics beta / stderr.
func (m *Model) TStats() []float64 {
	out := make([]float64, len(m.Coeffs))
	for i := range out {
		if m.StdErrs[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = m.Coeffs[i] / m.StdErrs[i]
	}
	return out
}

// Predict returns the fitted value for predictor vector row.
func (m *Model) Predict(row []float64) float64 {
	s := 0.0
	for j, c := range m.Coeffs {
		s += row[j] * c
	}
	return s
}
