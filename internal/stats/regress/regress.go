// Package regress implements ordinary least squares via Householder QR
// decomposition. It is the numerical substrate for the unit-root tests
// (ADF, KPSS) and the autoregressive forecaster used by homesight.
package regress

import (
	"errors"
	"math"
)

// ErrShape is returned when the design matrix and response disagree or the
// system is under-determined.
var ErrShape = errors.New("regress: invalid design shape")

// ErrSingular is returned when the design matrix is (numerically) rank
// deficient.
var ErrSingular = errors.New("regress: singular design matrix")

// Model is a fitted ordinary-least-squares model.
type Model struct {
	// Coeffs are the fitted coefficients, one per design column.
	Coeffs []float64
	// StdErrs are the coefficient standard errors.
	StdErrs []float64
	// Residuals are y - X·beta.
	Residuals []float64
	// Sigma2 is the unbiased residual variance estimate (RSS / (n - p)).
	Sigma2 float64
	// R2 is the coefficient of determination against the mean-only model.
	R2 float64
	// N and P are the number of observations and predictors.
	N, P int
}

// OLS fits y = X·beta + eps by least squares. X is row-major: X[i] is the
// i-th observation's predictor vector (include a column of ones for an
// intercept). It requires len(X) == len(y) and n > p.
func OLS(x [][]float64, y []float64) (*Model, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, ErrShape
	}
	p := len(x[0])
	if p == 0 || n <= p {
		return nil, ErrShape
	}
	for _, row := range x {
		if len(row) != p {
			return nil, ErrShape
		}
	}

	// Householder QR on a working copy [A | b].
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, p)
		copy(a[i], x[i])
	}
	b := make([]float64, n)
	copy(b, y)

	// Original column norms provide the scale for the rank tolerance.
	colScale := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			colScale[j] = math.Hypot(colScale[j], x[i][j])
		}
		if colScale[j] == 0 {
			return nil, ErrSingular
		}
	}

	// rdiag collects the diagonal of R.
	rdiag := make([]float64, p)
	for k := 0; k < p; k++ {
		// Norm of column k below the diagonal.
		norm := 0.0
		for i := k; i < n; i++ {
			norm = math.Hypot(norm, a[i][k])
		}
		if norm <= 1e-12*colScale[k] {
			return nil, ErrSingular
		}
		if a[k][k] < 0 {
			norm = -norm
		}
		for i := k; i < n; i++ {
			a[i][k] /= norm
		}
		a[k][k] += 1

		// Apply the reflector to the remaining columns and to b.
		for j := k + 1; j < p; j++ {
			s := 0.0
			for i := k; i < n; i++ {
				s += a[i][k] * a[i][j]
			}
			s = -s / a[k][k]
			for i := k; i < n; i++ {
				a[i][j] += s * a[i][k]
			}
		}
		s := 0.0
		for i := k; i < n; i++ {
			s += a[i][k] * b[i]
		}
		s = -s / a[k][k]
		for i := k; i < n; i++ {
			b[i] += s * a[i][k]
		}
		rdiag[k] = -norm
	}

	// Back substitution: R beta = Q'b (upper triangle of a, diagonal rdiag).
	beta := make([]float64, p)
	for k := p - 1; k >= 0; k-- {
		if rdiag[k] == 0 || math.Abs(rdiag[k]) < 1e-300 {
			return nil, ErrSingular
		}
		s := b[k]
		for j := k + 1; j < p; j++ {
			s -= a[k][j] * beta[j]
		}
		beta[k] = s / rdiag[k]
	}

	m := &Model{Coeffs: beta, N: n, P: p}

	// Residuals and RSS from the original data.
	m.Residuals = make([]float64, n)
	rss := 0.0
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	tss := 0.0
	for i := range y {
		pred := 0.0
		for j := 0; j < p; j++ {
			pred += x[i][j] * beta[j]
		}
		m.Residuals[i] = y[i] - pred
		rss += m.Residuals[i] * m.Residuals[i]
		tss += (y[i] - meanY) * (y[i] - meanY)
	}
	m.Sigma2 = rss / float64(n-p)
	if tss > 0 {
		m.R2 = 1 - rss/tss
	}

	// Standard errors: sigma2 * diag((X'X)^-1) via R inverse:
	// (X'X)^-1 = R^-1 R^-T. Solve R'z = e_j then R w = z per column.
	m.StdErrs = make([]float64, p)
	rinv := invertUpper(a, rdiag, p)
	if rinv == nil {
		return nil, ErrSingular
	}
	for j := 0; j < p; j++ {
		sum := 0.0
		for k := j; k < p; k++ {
			sum += rinv[j][k] * rinv[j][k]
		}
		m.StdErrs[j] = math.Sqrt(m.Sigma2 * sum)
	}
	return m, nil
}

// invertUpper inverts the upper-triangular R whose strict upper part is in a
// and diagonal in rdiag. Returns row-major R^-1 (upper triangular).
func invertUpper(a [][]float64, rdiag []float64, p int) [][]float64 {
	r := make([][]float64, p)
	for i := range r {
		r[i] = make([]float64, p)
		r[i][i] = rdiag[i]
		for j := i + 1; j < p; j++ {
			r[i][j] = a[i][j]
		}
	}
	inv := make([][]float64, p)
	for i := range inv {
		inv[i] = make([]float64, p)
	}
	for j := p - 1; j >= 0; j-- {
		if r[j][j] == 0 {
			return nil
		}
		inv[j][j] = 1 / r[j][j]
		for i := j - 1; i >= 0; i-- {
			s := 0.0
			for k := i + 1; k <= j; k++ {
				s += r[i][k] * inv[k][j]
			}
			inv[i][j] = -s / r[i][i]
		}
	}
	return inv
}

// TStats returns the coefficient t-statistics beta / stderr.
func (m *Model) TStats() []float64 {
	out := make([]float64, len(m.Coeffs))
	for i := range out {
		if m.StdErrs[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = m.Coeffs[i] / m.StdErrs[i]
	}
	return out
}

// Predict returns the fitted value for predictor vector row.
func (m *Model) Predict(row []float64) float64 {
	s := 0.0
	for j, c := range m.Coeffs {
		s += row[j] * c
	}
	return s
}
