package regress

import (
	"math"
	"math/rand"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestOLSExactLine(t *testing.T) {
	// y = 3 + 2x exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x = append(x, []float64{1, float64(i)})
		y = append(y, 3+2*float64(i))
	}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "intercept", m.Coeffs[0], 3, 1e-10)
	approx(t, "slope", m.Coeffs[1], 2, 1e-10)
	approx(t, "r2", m.R2, 1, 1e-12)
	approx(t, "sigma2", m.Sigma2, 0, 1e-18)
	approx(t, "predict", m.Predict([]float64{1, 100}), 203, 1e-8)
}

func TestOLSKnownSmallSystem(t *testing.T) {
	// Simple regression with hand-computable answer:
	// x = 0..4, y = (1, 2, 2, 4, 6): slope = sxy/sxx = 12/10 = 1.2,
	// intercept = 3 - 1.2*2 = 0.6.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{1, 2, 2, 4, 6}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "intercept", m.Coeffs[0], 0.6, 1e-10)
	approx(t, "slope", m.Coeffs[1], 1.2, 1e-10)
	// RSS = sum of squared residuals; residuals: .4, .2, -1, -.2, .6 → 1.6.
	approx(t, "sigma2", m.Sigma2, 1.6/3, 1e-10)
	// se(slope) = sqrt(sigma2/sxx) = sqrt(0.5333/10).
	approx(t, "se slope", m.StdErrs[1], math.Sqrt(1.6/3/10), 1e-10)
	// se(intercept) = sqrt(sigma2*(1/n + xbar^2/sxx)).
	approx(t, "se intercept", m.StdErrs[0], math.Sqrt(1.6/3*(0.2+0.4)), 1e-10)
}

func TestOLSRecoversCoefficientsUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{1, a, b}
		y[i] = 1.5 - 2*a + 0.5*b + 0.3*rng.NormFloat64()
	}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "b0", m.Coeffs[0], 1.5, 0.05)
	approx(t, "b1", m.Coeffs[1], -2, 0.05)
	approx(t, "b2", m.Coeffs[2], 0.5, 0.05)
	// t-stats of real effects should be enormous.
	ts := m.TStats()
	if math.Abs(ts[1]) < 50 {
		t.Errorf("t-stat for strong effect = %g, want large", ts[1])
	}
}

func TestOLSShapeErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
	if _, err := OLS([][]float64{{1}}, []float64{1, 2}); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
	// n <= p under-determined.
	if _, err := OLS([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
	// Ragged rows.
	if _, err := OLS([][]float64{{1, 2}, {3}, {4, 5}}, []float64{1, 2, 3}); err != ErrShape {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestOLSSingular(t *testing.T) {
	// Duplicate column → rank deficient.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := OLS(x, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("want ErrSingular, got %v", err)
	}
	// Zero column.
	x2 := [][]float64{{0, 1}, {0, 2}, {0, 3}}
	if _, err := OLS(x2, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestResidualsOrthogonalToDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{1, rng.NormFloat64(), rng.Float64() * 10}
		y[i] = rng.NormFloat64() * 5
	}
	m, err := OLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// X' r = 0 is the defining property of least squares.
	for j := 0; j < 3; j++ {
		dot := 0.0
		for i := 0; i < n; i++ {
			dot += x[i][j] * m.Residuals[i]
		}
		approx(t, "orthogonality", dot, 0, 1e-8)
	}
}
