// Package dominance implements Definition 4 of the paper: a device is
// φ-dominant for a gateway when the correlation similarity between its
// traffic and the aggregated gateway traffic exceeds φ. It also implements
// the two ranking baselines the paper compares against — Euclidean distance
// and absolute traffic volume — and the agreement metric of Sec. 6.2.
package dominance

import (
	"math"
	"sort"

	"homesight/internal/baselines"
	"homesight/internal/corrsim"
	"homesight/internal/devices"
	"homesight/internal/timeseries"
)

// DefaultPhi is the paper's dominance threshold.
const DefaultPhi = 0.6

// StrictPhi is the paper's tightened ablation threshold (Sec. 6.2).
const StrictPhi = 0.8

// DeviceSeries pairs a device with its traffic series on the gateway grid.
type DeviceSeries struct {
	Device devices.Device
	Series *timeseries.Series
}

// Score is one device's standing against the gateway traffic under all
// three notions of dominance.
type Score struct {
	Device devices.Device
	// Similarity is the Definition 1 correlation similarity to the gateway.
	Similarity float64
	// Euclidean is the Euclidean distance to the gateway series (smaller =
	// more dominant under the baseline).
	Euclidean float64
	// Traffic is the device's total traffic volume (larger = more dominant
	// under the volume baseline).
	Traffic float64
}

// Result is the dominance analysis of one gateway.
type Result struct {
	// Dominants are the φ-dominant devices in descending similarity order
	// ("first dominant" = most similar, as in Fig. 5).
	Dominants []Score
	// All holds every device's score, in descending similarity order.
	All []Score
}

// Detector runs Definition 4.
type Detector struct {
	// Measure is the similarity measure (zero value = α 0.05).
	Measure corrsim.Measure
	// Phi is the dominance threshold (0 → DefaultPhi).
	Phi float64
	// Similarity, when non-nil, supplies the Definition 1 similarity of
	// device k against the gateway instead of Measure.Similarity. The
	// experiments Env routes its pairwise-correlation cache through this
	// hook; any implementation must be equivalent to Measure.Similarity
	// on the same inputs or the Definition 4 semantics change.
	Similarity func(k int, ds DeviceSeries, gateway *timeseries.Series) float64
}

// Default is the paper's detector (φ = 0.6, α = 0.05).
var Default = Detector{}

func (d Detector) phi() float64 {
	if d.Phi == 0 { //homesight:ignore zero-sentinel — a dominance share of 0 is vacuous; zero safely means "default"
		return DefaultPhi
	}
	return d.Phi
}

// Detect scores every device against the gateway series and returns the
// φ-dominant set. Devices are compared on the gateway's own grid; the
// caller is responsible for aligning the series (synth and dataset both
// produce aligned grids).
func (d Detector) Detect(gateway *timeseries.Series, devs []DeviceSeries) Result {
	res := Result{All: make([]Score, 0, len(devs))}
	phi := d.phi()
	// For the Euclidean baseline a missing device observation means zero
	// traffic, not "skip the minute": skipping would hand sparse guest
	// devices an artificially tiny distance.
	zgw := gateway.FillMissing(0)
	for k, ds := range devs {
		sim := 0.0
		if d.Similarity != nil {
			sim = d.Similarity(k, ds, gateway)
		} else {
			sim = d.Measure.Similarity(ds.Series.Values, gateway.Values)
		}
		sc := Score{
			Device:     ds.Device,
			Similarity: sim,
			Traffic:    ds.Series.Total(),
		}
		// Equal lengths by construction; an error would be a caller bug and
		// surfaces as a zero distance, never silently ranking the device up
		// — but be explicit and rank it last instead.
		if eu, err := baselines.Euclidean(ds.Series.FillMissing(0).Values, zgw.Values); err == nil {
			sc.Euclidean = eu
		} else {
			sc.Euclidean = math.MaxFloat64
		}
		res.All = append(res.All, sc)
	}
	sort.SliceStable(res.All, func(i, j int) bool {
		return res.All[i].Similarity > res.All[j].Similarity
	})
	for _, sc := range res.All {
		if sc.Similarity > phi {
			res.Dominants = append(res.Dominants, sc)
		}
	}
	return res
}

// EuclideanRanking returns the device indices of scores ordered by
// ascending Euclidean distance (the baseline's "most dominant first").
func EuclideanRanking(scores []Score) []int {
	idx := identity(len(scores))
	sort.SliceStable(idx, func(a, b int) bool {
		return scores[idx[a]].Euclidean < scores[idx[b]].Euclidean
	})
	return idx
}

// TrafficRanking returns the device indices ordered by descending total
// traffic volume.
func TrafficRanking(scores []Score) []int {
	idx := identity(len(scores))
	sort.SliceStable(idx, func(a, b int) bool {
		return scores[idx[a]].Traffic > scores[idx[b]].Traffic
	})
	return idx
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Agreement counts how many of the correlation-dominant devices are ranked
// identically by a baseline ranking: the i-th dominant must be the i-th
// entry of the baseline order (the paper's "detected equally" criterion).
// It returns the number of position-matched dominants.
func Agreement(res Result, baselineOrder []int) int {
	matched := 0
	for i, dom := range res.Dominants {
		if i >= len(baselineOrder) {
			break
		}
		if res.All[baselineOrder[i]].Device.MAC == dom.Device.MAC {
			matched++
		}
	}
	return matched
}
