package dominance

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"homesight/internal/devices"
	"homesight/internal/synth"
	"homesight/internal/timeseries"
)

var mon = time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)

// mkSeries wraps values into a minute series.
func mkSeries(vals []float64) *timeseries.Series {
	return timeseries.New(mon, time.Minute, vals)
}

// mkDevice builds a DeviceSeries with the given MAC tail and values.
func mkDevice(mac string, vals []float64) DeviceSeries {
	return DeviceSeries{
		Device: devices.Device{MAC: mac, Inferred: devices.Portable},
		Series: mkSeries(vals),
	}
}

func TestDetectFindsTheDrivingDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	driver := make([]float64, n)
	noiseDev := make([]float64, n)
	gateway := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			driver[i] = 1e6 * rng.ExpFloat64()
		} else {
			driver[i] = 500 * rng.Float64()
		}
		noiseDev[i] = 300 * rng.Float64()
		gateway[i] = driver[i] + noiseDev[i]
	}
	res := Default.Detect(mkSeries(gateway), []DeviceSeries{
		mkDevice("aa:aa:aa:00:00:01", driver),
		mkDevice("aa:aa:aa:00:00:02", noiseDev),
	})
	if len(res.Dominants) < 1 {
		t.Fatalf("no dominants found: %+v", res.All)
	}
	if res.Dominants[0].Device.MAC != "aa:aa:aa:00:00:01" {
		t.Errorf("first dominant = %s, want the driver", res.Dominants[0].Device.MAC)
	}
	// Ranking is descending similarity.
	for i := 1; i < len(res.All); i++ {
		if res.All[i-1].Similarity < res.All[i].Similarity {
			t.Error("All not sorted by similarity")
		}
	}
}

func TestDetectNoDominantOnIndependentDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 100
		}
		return v
	}
	// Gateway dominated by an unobserved wired device: no wireless device
	// should be dominant.
	gw := make([]float64, n)
	for i := range gw {
		gw[i] = 1e5 * rng.ExpFloat64()
	}
	res := Default.Detect(mkSeries(gw), []DeviceSeries{
		mkDevice("aa:aa:aa:00:00:01", mk()),
		mkDevice("aa:aa:aa:00:00:02", mk()),
	})
	if len(res.Dominants) != 0 {
		t.Errorf("unexpected dominants: %+v", res.Dominants)
	}
}

func TestPhiThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1500
	driver := make([]float64, n)
	gw := make([]float64, n)
	for i := 0; i < n; i++ {
		driver[i] = 1000 * rng.ExpFloat64()
		// Strong but imperfect coupling → similarity between 0.6 and 0.8.
		gw[i] = driver[i] + 800*rng.ExpFloat64()
	}
	devs := []DeviceSeries{mkDevice("aa:aa:aa:00:00:01", driver)}
	loose := Detector{Phi: 0.6}.Detect(mkSeries(gw), devs)
	strict := Detector{Phi: StrictPhi}.Detect(mkSeries(gw), devs)
	sim := loose.All[0].Similarity
	if sim <= 0.6 || sim >= 0.8 {
		t.Skipf("construction landed at similarity %.3f, outside (0.6, 0.8)", sim)
	}
	if len(loose.Dominants) != 1 || len(strict.Dominants) != 0 {
		t.Errorf("phi thresholds misbehave: loose=%d strict=%d sim=%.3f",
			len(loose.Dominants), len(strict.Dominants), sim)
	}
}

func TestRankings(t *testing.T) {
	scores := []Score{
		{Device: devices.Device{MAC: "m0"}, Similarity: 0.9, Euclidean: 50, Traffic: 100},
		{Device: devices.Device{MAC: "m1"}, Similarity: 0.7, Euclidean: 10, Traffic: 900},
		{Device: devices.Device{MAC: "m2"}, Similarity: 0.1, Euclidean: 99, Traffic: 500},
	}
	eu := EuclideanRanking(scores)
	if eu[0] != 1 || eu[1] != 0 || eu[2] != 2 {
		t.Errorf("euclidean order = %v", eu)
	}
	tr := TrafficRanking(scores)
	if tr[0] != 1 || tr[1] != 2 || tr[2] != 0 {
		t.Errorf("traffic order = %v", tr)
	}
}

func TestAgreement(t *testing.T) {
	res := Result{
		All: []Score{
			{Device: devices.Device{MAC: "m0"}},
			{Device: devices.Device{MAC: "m1"}},
			{Device: devices.Device{MAC: "m2"}},
		},
	}
	res.Dominants = []Score{res.All[0], res.All[1]}
	// Baseline agrees on both positions.
	if got := Agreement(res, []int{0, 1, 2}); got != 2 {
		t.Errorf("agreement = %d, want 2", got)
	}
	// Baseline swaps the top two: zero positional matches.
	if got := Agreement(res, []int{1, 0, 2}); got != 0 {
		t.Errorf("agreement = %d, want 0", got)
	}
	// Baseline agrees on first only.
	if got := Agreement(res, []int{0, 2, 1}); got != 1 {
		t.Errorf("agreement = %d, want 1", got)
	}
	if got := Agreement(Result{}, nil); got != 0 {
		t.Errorf("empty agreement = %d", got)
	}
}

func TestCorrelationDominanceCatchesLowVolumeFollower(t *testing.T) {
	// The paper's key qualitative claim: a device can closely follow the
	// gateway's evolution while producing modest volume; correlation
	// dominance finds it, traffic-volume dominance does not.
	rng := rand.New(rand.NewSource(4))
	n := 2000
	follower := make([]float64, n) // tracks gateway shape at 5% volume
	hog := make([]float64, n)      // huge volume, flat shape
	gw := make([]float64, n)
	for i := 0; i < n; i++ {
		activity := 0.0
		if rng.Float64() < 0.08 {
			activity = 1e6 * rng.ExpFloat64()
		}
		follower[i] = activity * 0.05
		hog[i] = 3e5 // constant heavy background, no evolution
		gw[i] = activity + hog[i] + 200*rng.Float64()
	}
	res := Default.Detect(mkSeries(gw), []DeviceSeries{
		mkDevice("aa:aa:aa:00:00:0f", follower),
		mkDevice("aa:aa:aa:00:00:0h", hog),
	})
	if len(res.Dominants) == 0 || res.Dominants[0].Device.MAC != "aa:aa:aa:00:00:0f" {
		t.Fatalf("correlation dominance should find the follower: %+v", res.All)
	}
	// Volume baseline puts the hog first instead.
	tr := TrafficRanking(res.All)
	if res.All[tr[0]].Device.MAC != "aa:aa:aa:00:00:0h" {
		t.Errorf("traffic baseline should prefer the hog")
	}
	if Agreement(res, tr) != 0 {
		t.Error("volume baseline should disagree here")
	}
}

func TestSyntheticHomesMostlyHaveADominantDevice(t *testing.T) {
	// Paper: 192/196 gateways have at least one dominant device; at most 3.
	cfg := synth.DefaultConfig()
	cfg.Homes = 25
	cfg.Weeks = 4
	d := synth.NewDeployment(cfg)
	withDominant := 0
	for i := 0; i < d.NumHomes(); i++ {
		h := d.Home(i)
		gw := h.Overall()
		var devs []DeviceSeries
		for _, dt := range h.Traffic() {
			devs = append(devs, DeviceSeries{Device: dt.Spec.Device, Series: dt.Overall()})
		}
		res := Default.Detect(gw, devs)
		if len(res.Dominants) > 0 {
			withDominant++
		}
	}
	if frac := float64(withDominant) / float64(d.NumHomes()); frac < 0.8 {
		t.Errorf("only %.0f%% of homes have a dominant device, want ~98%%", frac*100)
	}
}

func TestDetectSkipsAllNaNDevice(t *testing.T) {
	n := 100
	gw := make([]float64, n)
	ghost := make([]float64, n)
	for i := range gw {
		gw[i] = float64(i)
		ghost[i] = math.NaN()
	}
	res := Default.Detect(mkSeries(gw), []DeviceSeries{mkDevice("aa:aa:aa:00:00:01", ghost)})
	if len(res.Dominants) != 0 {
		t.Error("ghost device must not be dominant")
	}
	if res.All[0].Similarity != 0 {
		t.Errorf("ghost similarity = %g", res.All[0].Similarity)
	}
}

// TestDetectorSimilarityHook checks that a non-nil Similarity hook replaces
// Measure.Similarity as the Definition 4 input — the seam the experiments
// Env uses to route its pairwise-correlation cache into detection.
func TestDetectorSimilarityHook(t *testing.T) {
	gw := mkSeries([]float64{1, 2, 3, 4, 5, 6})
	devs := []DeviceSeries{
		mkDevice("aa:aa:aa:00:00:01", []float64{0, 0, 0, 0, 0, 0}),
		mkDevice("aa:aa:aa:00:00:02", []float64{0, 0, 0, 0, 0, 0}),
		mkDevice("aa:aa:aa:00:00:03", []float64{0, 0, 0, 0, 0, 0}),
	}
	canned := []float64{0.3, 0.95, 0.7}
	var seen []int
	det := Detector{Similarity: func(k int, ds DeviceSeries, gateway *timeseries.Series) float64 {
		seen = append(seen, k)
		if gateway != gw {
			t.Error("hook did not receive the gateway series")
		}
		return canned[k]
	}}
	res := det.Detect(gw, devs)
	if len(seen) != len(devs) {
		t.Fatalf("hook called for %d devices, want %d", len(seen), len(devs))
	}
	if len(res.Dominants) != 2 {
		t.Fatalf("dominants = %d, want the two above φ=0.6", len(res.Dominants))
	}
	if res.Dominants[0].Device.MAC != "aa:aa:aa:00:00:02" ||
		res.Dominants[1].Device.MAC != "aa:aa:aa:00:00:03" {
		t.Errorf("dominants order = %s, %s",
			res.Dominants[0].Device.MAC, res.Dominants[1].Device.MAC)
	}
	if math.Abs(res.Dominants[0].Similarity-0.95) > 1e-12 {
		t.Errorf("similarity = %g, want the hook's value", res.Dominants[0].Similarity)
	}
}
