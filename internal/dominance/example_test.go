package dominance_test

import (
	"fmt"
	"math/rand"
	"time"

	"homesight/internal/devices"
	"homesight/internal/dominance"
	"homesight/internal/timeseries"
)

// A laptop drives the home's evening bursts while a NAS moves more total
// bytes at a flat rate. Correlation dominance finds the laptop; the
// traffic-volume baseline would crown the NAS.
func ExampleDetector_Detect() {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2014, 3, 17, 0, 0, 0, 0, time.UTC)
	n := 4 * 24 * 60

	laptop := make([]float64, n)
	nas := make([]float64, n)
	gw := make([]float64, n)
	for m := 0; m < n; m++ {
		hour := (m % 1440) / 60
		if hour >= 19 && hour < 23 && rng.Float64() < 0.5 {
			laptop[m] = 2e6 // evening usage bursts
		}
		nas[m] = 3e5 // constant sync chatter, huge total
		gw[m] = laptop[m] + nas[m] + 100*rng.Float64()
	}

	mk := func(vals []float64) *timeseries.Series {
		return timeseries.New(start, time.Minute, vals)
	}
	res := dominance.Default.Detect(mk(gw), []dominance.DeviceSeries{
		{Device: devices.Device{MAC: "aa:…:01", Name: "Lea-Laptop", Inferred: devices.Fixed}, Series: mk(laptop)},
		{Device: devices.Device{MAC: "aa:…:02", Name: "NAS", Inferred: devices.NetworkEq}, Series: mk(nas)},
	})

	for rank, sc := range res.Dominants {
		fmt.Printf("#%d %s cor=%.2f\n", rank+1, sc.Device.Name, sc.Similarity)
	}
	byVolume := dominance.TrafficRanking(res.All)
	fmt.Printf("volume baseline would pick: %s\n", res.All[byVolume[0]].Device.Name)
	// Output:
	// #1 Lea-Laptop cor=1.00
	// volume baseline would pick: NAS
}
