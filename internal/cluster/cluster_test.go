package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"homesight/internal/corrsim"
)

// twoBlobMatrix returns a distance matrix with two tight groups {0,1,2} and
// {3,4} far apart.
func twoBlobMatrix() [][]float64 {
	return DistanceMatrix(5, func(i, j int) float64 {
		gi, gj := i/3, j/3 // 0,1,2 → 0; 3,4 → 1
		if gi == gj {
			return 0.1
		}
		return 0.9
	})
}

func sortClusters(cs [][]int) [][]int {
	for _, c := range cs {
		sort.Ints(c)
	}
	sort.Slice(cs, func(a, b int) bool { return cs[a][0] < cs[b][0] })
	return cs
}

func TestAgglomerateTwoBlobs(t *testing.T) {
	for _, lk := range []Linkage{Average, Complete, Single} {
		d, err := Agglomerate(twoBlobMatrix(), lk)
		if err != nil {
			t.Fatal(err)
		}
		cs := sortClusters(d.Cut(0.4))
		if len(cs) != 2 {
			t.Fatalf("linkage %d: %d clusters, want 2 (%v)", lk, len(cs), cs)
		}
		if len(cs[0]) != 3 || len(cs[1]) != 2 {
			t.Errorf("linkage %d: cluster sizes %v", lk, cs)
		}
	}
}

func TestCutExtremes(t *testing.T) {
	d, err := Agglomerate(twoBlobMatrix(), Average)
	if err != nil {
		t.Fatal(err)
	}
	// Cut below every merge: all singletons.
	if cs := d.Cut(0.05); len(cs) != 5 {
		t.Errorf("low cut: %d clusters, want 5", len(cs))
	}
	// Cut above every merge: one cluster with all items.
	cs := d.Cut(10)
	if len(cs) != 1 || len(cs[0]) != 5 {
		t.Errorf("high cut: %v", cs)
	}
}

func TestHeightsMonotoneForAverageLinkage(t *testing.T) {
	d, err := Agglomerate(twoBlobMatrix(), Average)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Heights) != 4 {
		t.Fatalf("heights = %v, want 4 merges", d.Heights)
	}
	for i := 1; i < len(d.Heights); i++ {
		if d.Heights[i] < d.Heights[i-1]-1e-12 {
			t.Errorf("heights not monotone: %v", d.Heights)
		}
	}
}

func TestSingleItem(t *testing.T) {
	d, err := Agglomerate([][]float64{{0}}, Average)
	if err != nil {
		t.Fatal(err)
	}
	cs := d.Cut(0.5)
	if len(cs) != 1 || cs[0][0] != 0 {
		t.Errorf("single item clusters = %v", cs)
	}
	if len(d.Heights) != 0 {
		t.Errorf("single item has no merges, got %v", d.Heights)
	}
}

func TestMalformedMatrix(t *testing.T) {
	if _, err := Agglomerate(nil, Average); err != ErrMatrix {
		t.Errorf("want ErrMatrix, got %v", err)
	}
	if _, err := Agglomerate([][]float64{{0, 1}, {1}}, Average); err != ErrMatrix {
		t.Errorf("want ErrMatrix, got %v", err)
	}
}

func TestLeavesCoverAllItems(t *testing.T) {
	d, err := Agglomerate(twoBlobMatrix(), Complete)
	if err != nil {
		t.Fatal(err)
	}
	leaves := d.Root.Leaves()
	sort.Ints(leaves)
	if len(leaves) != 5 {
		t.Fatalf("leaves = %v", leaves)
	}
	for i, l := range leaves {
		if l != i {
			t.Errorf("leaves = %v", leaves)
		}
	}
}

func TestWithCorrelationDistance(t *testing.T) {
	// End-to-end with the paper's distance 1 - cor: three scaled copies of
	// one trend plus two of another should split at cut 0.4.
	trendA := []float64{1, 5, 2, 8, 3, 9, 4, 10, 2, 7}
	trendB := []float64{10, 2, 9, 1, 8, 2, 7, 1, 9, 3}
	series := [][]float64{
		scale(trendA, 1), scale(trendA, 50), scale(trendA, 0.2),
		scale(trendB, 1), scale(trendB, 10),
	}
	m := DistanceMatrix(len(series), func(i, j int) float64 {
		return corrsim.Default.Distance(series[i], series[j])
	})
	d, err := Agglomerate(m, Average)
	if err != nil {
		t.Fatal(err)
	}
	cs := sortClusters(d.Cut(0.4))
	if len(cs) != 2 || len(cs[0]) != 3 || len(cs[1]) != 2 {
		t.Errorf("correlation clusters = %v", cs)
	}
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}

func TestDistanceMatrixSymmetry(t *testing.T) {
	m := DistanceMatrix(4, func(i, j int) float64 { return math.Abs(float64(i - j)) })
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal not zero at %d", i)
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at %d,%d", i, j)
			}
		}
	}
}

func TestCutIsAlwaysAPartitionQuick(t *testing.T) {
	// Any cut of any dendrogram partitions the items exactly.
	err := quick.Check(func(seed int64, cutRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := DistanceMatrix(n, func(i, j int) float64 { return rng.Float64() })
		// DistanceMatrix calls dist once per pair; symmetry holds by
		// construction even with a random function.
		d, err := Agglomerate(m, Average)
		if err != nil {
			return false
		}
		cut := math.Abs(math.Mod(cutRaw, 1.5))
		seen := make(map[int]bool)
		for _, c := range d.Cut(cut) {
			for _, item := range c {
				if seen[item] {
					return false // duplicate item across clusters
				}
				seen[item] = true
			}
		}
		return len(seen) == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
