// Package cluster implements agglomerative hierarchical clustering over a
// precomputed distance matrix, used with the correlation distance
// 1 − cor(·,·) to reproduce the similarity clusters of Fig. 3 (cut at
// distance 0.4, i.e. correlation 0.6).
package cluster

import (
	"errors"
	"math"
)

// Linkage selects how inter-cluster distance is computed.
type Linkage int

// Linkage strategies.
const (
	// Average linkage (UPGMA): mean pairwise distance.
	Average Linkage = iota
	// Complete linkage: maximum pairwise distance.
	Complete
	// Single linkage: minimum pairwise distance.
	Single
)

// ErrMatrix is returned for malformed distance matrices.
var ErrMatrix = errors.New("cluster: distance matrix must be square and non-empty")

// Node is a dendrogram node. Leaves have Left == Right == nil and Item set;
// internal nodes carry the merge Height.
type Node struct {
	Left, Right *Node
	// Item is the leaf's index into the original matrix (leaves only).
	Item int
	// Height is the distance at which the children merged (internal only).
	Height float64
	// size caches the number of leaves underneath.
	size int
}

// Leaves returns the original item indices under the node, left to right.
func (n *Node) Leaves() []int {
	if n == nil {
		return nil
	}
	if n.Left == nil && n.Right == nil {
		return []int{n.Item}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Dendrogram is the result of a hierarchical clustering run.
type Dendrogram struct {
	Root *Node
	// Heights lists every merge height in order, useful for diagnostics.
	Heights []float64
}

// Agglomerate clusters items given their symmetric distance matrix.
// The matrix must be square; only the upper triangle is read.
func Agglomerate(dist [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, ErrMatrix
	}
	for _, row := range dist {
		if len(row) != n {
			return nil, ErrMatrix
		}
	}

	// active clusters: node + member leaves.
	type clusterState struct {
		node   *Node
		leaves []int
	}
	clusters := make([]*clusterState, n)
	for i := 0; i < n; i++ {
		clusters[i] = &clusterState{node: &Node{Item: i, size: 1}, leaves: []int{i}}
	}

	interDist := func(a, b *clusterState) float64 {
		switch linkage {
		case Single:
			best := math.Inf(1)
			for _, i := range a.leaves {
				for _, j := range b.leaves {
					if d := dist[i][j]; d < best {
						best = d
					}
				}
			}
			return best
		case Complete:
			worst := math.Inf(-1)
			for _, i := range a.leaves {
				for _, j := range b.leaves {
					if d := dist[i][j]; d > worst {
						worst = d
					}
				}
			}
			return worst
		default: // Average
			sum := 0.0
			for _, i := range a.leaves {
				for _, j := range b.leaves {
					sum += dist[i][j]
				}
			}
			return sum / float64(len(a.leaves)*len(b.leaves))
		}
	}

	dendro := &Dendrogram{}
	for len(clusters) > 1 {
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := interDist(clusters[i], clusters[j]); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		merged := &clusterState{
			node: &Node{
				Left:   clusters[bi].node,
				Right:  clusters[bj].node,
				Height: best,
				size:   clusters[bi].node.size + clusters[bj].node.size,
			},
			leaves: append(append([]int{}, clusters[bi].leaves...), clusters[bj].leaves...),
		}
		dendro.Heights = append(dendro.Heights, best)
		// Remove j first (higher index), then i.
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
	dendro.Root = clusters[0].node
	return dendro, nil
}

// Cut returns the clusters obtained by cutting the dendrogram at the given
// height: maximal subtrees whose merge heights are all <= height. Each
// cluster is a set of original item indices. With the correlation distance,
// height 0.4 yields the paper's "correlation >= 0.6" clusters.
func (d *Dendrogram) Cut(height float64) [][]int {
	var out [][]int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Left == nil && n.Right == nil {
			out = append(out, []int{n.Item})
			return
		}
		if maxHeight(n) <= height {
			out = append(out, n.Leaves())
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(d.Root)
	return out
}

// maxHeight returns the largest merge height in the subtree.
func maxHeight(n *Node) float64 {
	if n == nil || (n.Left == nil && n.Right == nil) {
		return 0
	}
	h := n.Height
	if lh := maxHeight(n.Left); lh > h {
		h = lh
	}
	if rh := maxHeight(n.Right); rh > h {
		h = rh
	}
	return h
}

// DistanceMatrix builds a symmetric matrix by applying dist to every pair
// of items. The diagonal is zero.
func DistanceMatrix(n int, dist func(i, j int) float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(i, j)
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}
