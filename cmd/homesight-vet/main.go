// Command homesight-vet runs homesight's project-specific static analysis:
// thirteen stdlib-only (go/ast + go/types) rules that mechanically enforce
// the repo's statistical, concurrency, and observability invariants — the
// Definition 1 significance gate, no exact float equality, no silently
// dropped errors or contexts, joinable goroutine fan-out, named paper
// thresholds, deterministic time and randomness, no blocking calls under
// held locks, error wrapping with %w, and metrics↔catalog parity.
//
// Usage:
//
//	homesight-vet [flags] [./...]
//	homesight-vet -fix ./...          # apply suggested fixes in place
//	homesight-vet -format=sarif       # machine-readable report for CI upload
//	homesight-vet -baseline FILE      # fail only on drift from accepted findings
//	homesight-vet -ci                 # extended tier-1 gate: go vet, race tests, then itself
//
// Findings print as "file:line: [rule] message"; the exit status is 0 when
// clean, 1 on findings (or baseline drift), 2 on load or usage errors.
// Per-line opt-outs: //homesight:ignore <rule> — <reason> (or
// //homesight:rawcorr for sig-gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"homesight/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list rules and exit")
	ci := flag.Bool("ci", false, "run the extended tier-1 gate: go vet ./..., go test -race ./..., then the analyzers")
	dir := flag.String("C", ".", "change to directory before running")
	format := flag.String("format", "text", "report format: text, json, or sarif")
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	fixDryRun := flag.Bool("fix-dry-run", false, "exit 1 if -fix would change any file, without writing")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings; fail only on drift")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file to accept every current finding")
	timing := flag.Bool("timing", false, "print load and analysis phase timings to stderr")
	catalog := flag.String("catalog", "", "observability catalog path for metrics-parity (default: <module>/OBSERVABILITY.md)")
	flag.Parse()

	analyzers := analysis.All()
	if *rules != "" {
		var err error
		if analyzers, err = analysis.ByName(*rules); err != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "homesight-vet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "homesight-vet: -write-baseline requires -baseline FILE")
		return 2
	}

	if *ci {
		for _, cmd := range [][]string{
			{"go", "vet", "./..."},
			{"go", "test", "-race", "./..."},
		} {
			fmt.Println("homesight-vet:", strings.Join(cmd, " "))
			c := exec.Command(cmd[0], cmd[1:]...)
			c.Dir = *dir
			c.Stdout = os.Stdout
			c.Stderr = os.Stderr
			if err := c.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "homesight-vet: %s failed: %v\n", strings.Join(cmd, " "), err)
				return 1
			}
		}
		fmt.Println("homesight-vet: analyzers")
	}

	mod, err := analysis.NewModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	paths, err := selectPackages(mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}

	// Load and type-check the whole module in parallel even when the CLI
	// restricts the reported packages: cross-package facts (determinism,
	// lock-held, metrics-parity) must see every package to be sound.
	pkgs, err := mod.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	typeErrs := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "homesight-vet: %s: type error: %v\n", pkg.Path, terr)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		return 2
	}

	res, err := analysis.Run(mod, pkgs, analyzers, analysis.RunOptions{
		Catalog:  *catalog,
		Packages: paths,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	if *timing {
		lt := mod.Timing
		fmt.Fprintf(os.Stderr, "homesight-vet: timing walk=%s parse=%s check=%s facts=%s analyze=%s finish=%s\n",
			lt.Walk, lt.Parse, lt.Check, res.Facts, res.Analyze, res.Finish)
	}
	findings := res.Findings

	if *fix || *fixDryRun {
		return applyFixes(mod, findings, *fixDryRun)
	}

	if *baselinePath != "" && *writeBaseline {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, mod.Root, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", werr)
			return 2
		}
		fmt.Printf("homesight-vet: wrote %s (%d findings accepted)\n", *baselinePath, len(findings))
		return 0
	}

	var stale []string
	if *baselinePath != "" {
		base, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", err)
			return 2
		}
		findings, stale = base.Reconcile(mod.Root, findings)
	}

	if err := report(mod, analyzers, findings, *format); err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	for _, k := range stale {
		fmt.Fprintf(os.Stderr, "homesight-vet: stale baseline entry (finding fixed — delete it or rerun -write-baseline): %s\n", k)
	}

	if len(findings) > 0 || len(stale) > 0 {
		return 1
	}
	if *ci {
		fmt.Println("homesight-vet: clean")
	}
	return 0
}

// report renders findings to stdout in the selected format. SARIF and
// JSON render even an empty run (CI artifacts want a valid document);
// text stays silent when clean.
func report(mod *analysis.Module, analyzers []*analysis.Analyzer, findings []analysis.Finding, format string) error {
	switch format {
	case "json":
		return analysis.WriteJSON(os.Stdout, mod.Root, findings)
	case "sarif":
		return analysis.WriteSARIF(os.Stdout, mod.Root, analyzers, findings)
	default:
		return analysis.WriteText(os.Stdout, mod.Root, findings)
	}
}

// applyFixes computes every suggested fix and either writes the files in
// place (-fix) or reports what would change (-fix-dry-run). Findings
// without a fix are reported as usual; the exit status reflects them plus,
// in dry-run mode, any file that would be rewritten.
func applyFixes(mod *analysis.Module, findings []analysis.Finding, dryRun bool) int {
	fixes, err := analysis.ApplyFixes(findings, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	fixed := map[string]bool{}
	for _, ff := range fixes {
		for _, f := range ff.Applied {
			fixed[f.String()] = true
		}
	}
	var unfixed []analysis.Finding
	for _, f := range findings {
		if !fixed[f.String()] {
			unfixed = append(unfixed, f)
		}
	}

	status := 0
	if dryRun {
		for _, ff := range fixes {
			fmt.Printf("homesight-vet: -fix would rewrite %s (%d fixes)\n",
				analysis.Relativize(mod.Root, ff.Filename), len(ff.Applied))
			status = 1
		}
	} else {
		if err := analysis.WriteFixes(fixes); err != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", err)
			return 2
		}
		for _, ff := range fixes {
			fmt.Printf("homesight-vet: fixed %s (%d fixes)\n",
				analysis.Relativize(mod.Root, ff.Filename), len(ff.Applied))
		}
	}
	if err := analysis.WriteText(os.Stdout, mod.Root, unfixed); err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	if len(unfixed) > 0 {
		status = 1
	}
	return status
}

// selectPackages expands the command-line patterns ("./...", "./internal/x",
// import paths) into module package paths; no arguments means the module.
func selectPackages(mod *analysis.Module, args []string) ([]string, error) {
	all, err := mod.PackageDirs()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := map[string]bool{}
	for _, arg := range args {
		matched := false
		for _, p := range all {
			if !matchPattern(mod, arg, p) || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

// matchPattern reports whether package path p matches one CLI pattern.
func matchPattern(mod *analysis.Module, pattern, p string) bool {
	// Normalize "./x" and "x" to the import-path form.
	pat := strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		full := mod.Path + "/" + rest
		return p == full || strings.HasPrefix(p, full+"/") ||
			p == rest || strings.HasPrefix(p, rest+"/")
	}
	return p == pat || p == mod.Path+"/"+pat
}
