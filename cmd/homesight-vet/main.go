// Command homesight-vet runs homesight's project-specific static analysis:
// five stdlib-only (go/ast + go/types) rules that mechanically enforce the
// repo's statistical and concurrency invariants — the Definition 1
// significance gate, no exact float equality, no silently dropped errors,
// joinable goroutine fan-out, and named paper thresholds.
//
// Usage:
//
//	homesight-vet [flags] [./...]
//	homesight-vet -ci            # extended tier-1 gate: go vet, race tests, then itself
//
// Findings print as "file:line: [rule] message"; the exit status is 0 when
// clean, 1 on findings, 2 on load or usage errors. Per-line opt-outs:
// //homesight:ignore <rule> (or //homesight:rawcorr for sig-gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"homesight/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	rules := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "list rules and exit")
	ci := flag.Bool("ci", false, "run the extended tier-1 gate: go vet ./..., go test -race ./..., then the analyzers")
	dir := flag.String("C", ".", "change to directory before running")
	flag.Parse()

	analyzers := analysis.All()
	if *rules != "" {
		var err error
		if analyzers, err = analysis.ByName(*rules); err != nil {
			fmt.Fprintln(os.Stderr, "homesight-vet:", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *ci {
		for _, cmd := range [][]string{
			{"go", "vet", "./..."},
			{"go", "test", "-race", "./..."},
		} {
			fmt.Println("homesight-vet:", strings.Join(cmd, " "))
			c := exec.Command(cmd[0], cmd[1:]...)
			c.Dir = *dir
			c.Stdout = os.Stdout
			c.Stderr = os.Stderr
			if err := c.Run(); err != nil {
				fmt.Fprintf(os.Stderr, "homesight-vet: %s failed: %v\n", strings.Join(cmd, " "), err)
				return 1
			}
		}
		fmt.Println("homesight-vet: analyzers")
	}

	mod, err := analysis.NewModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}
	paths, err := selectPackages(mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "homesight-vet:", err)
		return 2
	}

	status := 0
	for _, path := range paths {
		pkg, err := mod.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "homesight-vet: %s: %v\n", path, err)
			return 2
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "homesight-vet: %s: type error: %v\n", path, terr)
			status = 2
		}
		for _, f := range analysis.RunPackage(pkg, analyzers) {
			fmt.Println(relativize(mod.Root, f))
			if status == 0 {
				status = 1
			}
		}
	}
	if status == 0 && *ci {
		fmt.Println("homesight-vet: clean")
	}
	return status
}

// selectPackages expands the command-line patterns ("./...", "./internal/x",
// import paths) into module package paths; no arguments means the module.
func selectPackages(mod *analysis.Module, args []string) ([]string, error) {
	all, err := mod.PackageDirs()
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := map[string]bool{}
	for _, arg := range args {
		matched := false
		for _, p := range all {
			if !matchPattern(mod, arg, p) || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
			matched = true
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

// matchPattern reports whether package path p matches one CLI pattern.
func matchPattern(mod *analysis.Module, pattern, p string) bool {
	// Normalize "./x" and "x" to the import-path form.
	pat := strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		full := mod.Path + "/" + rest
		return p == full || strings.HasPrefix(p, full+"/") ||
			p == rest || strings.HasPrefix(p, rest+"/")
	}
	return p == pat || p == mod.Path+"/"+pat
}

// relativize shortens finding paths to be module-root relative.
func relativize(root string, f analysis.Finding) string {
	s := f.String()
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d: [%s] %s", rel, f.Pos.Line, f.Rule, f.Message)
	}
	return s
}
