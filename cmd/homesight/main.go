// Command homesight runs the paper's analyses over a synthetic deployment
// (or a single gateway CSV exported by homesim) and prints the results.
//
// Usage:
//
//	homesight <subcommand> [flags]
//
// Subcommands:
//
//	dominants   φ-dominant devices per gateway (Def. 4)
//	motifs      weekly and daily motif discovery (Def. 5)
//	aggregate   best aggregation-granularity curves (Def. 3)
//	stationary  strong-stationarity census (Def. 2)
//	background  background-traffic thresholds per device (Sec. 6.1)
//	similarity  correlation similarity between two gateways (Def. 1)
//
// -debug-addr serves live observability (Prometheus /metrics, /healthz,
// /debug/pprof) while the analysis runs. See OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"homesight/internal/background"
	"homesight/internal/core"
	"homesight/internal/dataset"
	"homesight/internal/dominance"
	"homesight/internal/experiments"
	"homesight/internal/obs"
	"homesight/internal/obs/slogx"
	"homesight/internal/report"
)

// logger stamps every event from this binary; subcommand helpers share it.
var logger = slogx.With("component", "homesight")

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	homes := fs.Int("homes", 60, "number of gateways to simulate")
	weeks := fs.Int("weeks", 6, "campaign length in weeks")
	seed := fs.Int64("seed", 0, "master seed (default 20140317)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker count for per-gateway fan-out")
	gatewayID := fs.String("gw", "", "restrict output to one gateway id")
	dataDir := fs.String("data", "", "analyze a homesim export instead of simulating")
	debugAddr := fs.String("debug-addr", "",
		"serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if lvl, err := slogx.ParseLevel(*logLevel); err != nil {
		logger.Fatal("bad flag", "flag", "log-level", "err", err)
	} else {
		slogx.SetLevel(lvl)
	}

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		srv, err := obs.NewServer(*debugAddr, reg)
		if err != nil {
			logger.Fatal("debug server failed", "addr", *debugAddr, "err", err)
		}
		defer func() { _ = srv.Close() }() //homesight:ignore unchecked-close — best-effort shutdown at exit
		logger.Info("debug server listening", "addr", srv.Addr())
	}

	if *dataDir != "" {
		runFromData(cmd, *dataDir, *gatewayID)
		return
	}

	opts := []experiments.Option{
		experiments.WithHomes(*homes),
		experiments.WithWeeks(*weeks),
		experiments.WithParallelism(*parallel),
		experiments.WithRegistry(reg),
	}
	if *seed != 0 {
		opts = append(opts, experiments.WithSeed(*seed))
	}
	env, err := experiments.NewEnv(opts...)
	if err != nil {
		logger.Fatal("env setup failed", "err", err)
	}

	switch cmd {
	case "dominants":
		runDominants(env, *gatewayID)
	case "motifs":
		runMotifs(env)
	case "aggregate":
		runAggregate(env)
	case "stationary":
		runStationary(env)
	case "background":
		runBackground(env)
	case "similarity":
		runSimilarity(env, fs.Args())
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: homesight <subcommand> [flags]

subcommands:
  dominants    dominant devices per gateway (Definition 4)
  motifs       weekly and daily motifs (Definition 5)
  aggregate    aggregation curves and best binning (Definition 3)
  stationary   strong stationarity census (Definition 2)
  background   background thresholds per device (Sec 6.1)
  similarity   correlation similarity of two gateways (Definition 1)

common flags: -homes N -weeks N -seed N -gw gwNNN
data mode:    -data DIR analyzes a homesim export (dominants, background)`)
}

// runFromData analyzes gateways loaded from a homesim export.
func runFromData(cmd, dir, only string) {
	man, gateways, err := dataset.LoadDir(dir)
	if err != nil {
		logger.Fatal("load failed", "dir", dir, "err", err)
	}
	logger.Info("loaded export", "gateways", len(gateways),
		"weeks", man.Config.Weeks, "start", man.Config.Start.Format("2006-01-02"))
	switch cmd {
	case "dominants":
		det := core.Default.Detector()
		t := report.NewTable("Dominant devices (φ=0.6)", "gateway", "rank", "device", "type", "similarity")
		for _, g := range gateways {
			if only != "" && g.ID != only {
				continue
			}
			var devs []dominance.DeviceSeries
			for _, dr := range g.Devices {
				devs = append(devs, dominance.DeviceSeries{Device: dr.Device, Series: dr.Overall()})
			}
			out := det.Detect(g.Overall, devs)
			for rank, sc := range out.Dominants {
				t.AddRow(g.ID, rank+1, sc.Device.Name, string(sc.Device.Inferred), sc.Similarity)
			}
		}
		fmt.Print(t.String())
	case "background":
		t := report.NewTable("Background thresholds", "gateway", "device", "type", "tau in", "tau out", "group")
		for _, g := range gateways {
			if only != "" && g.ID != only {
				continue
			}
			for _, dr := range g.Devices {
				th := background.EstimateThreshold(dr.In, dr.Out)
				grp := background.GroupOf(math.Max(th.TauIn, th.TauOut))
				t.AddRow(g.ID, dr.Device.Name, string(dr.Device.Inferred), th.TauIn, th.TauOut, string(grp))
			}
		}
		fmt.Print(t.String())
	default:
		logger.Fatal("data mode supports only dominants and background", "subcommand", cmd)
	}
}

func runDominants(env *experiments.Env, only string) {
	res, err := experiments.Fig05DominantDevices(context.Background(), env)
	if err != nil {
		logger.Fatal("dominants failed", "err", err)
	}
	fmt.Print(res)
	if only != "" {
		printGatewayDominants(env, only)
	}
}

func printGatewayDominants(env *experiments.Env, id string) {
	for i := 0; i < env.Dep.NumHomes(); i++ {
		h := env.Home(i)
		if h.ID != id {
			continue
		}
		var devs []dominance.DeviceSeries
		for _, dt := range h.Traffic() {
			devs = append(devs, dominance.DeviceSeries{Device: dt.Spec.Device, Series: dt.Overall()})
		}
		out := env.Framework.Detector().Detect(h.Overall(), devs)
		t := report.NewTable("Gateway "+id, "rank", "device", "type", "similarity", "traffic")
		for r, sc := range out.Dominants {
			t.AddRow(r+1, sc.Device.Name, string(sc.Device.Inferred), sc.Similarity, sc.Traffic)
		}
		fmt.Print(t.String())
		return
	}
	logger.Fatal("gateway not found", "gw", id)
}

func runMotifs(env *experiments.Env) {
	weekly, err := experiments.MineWeeklyMotifs(context.Background(), env)
	if err != nil {
		logger.Fatal("weekly motifs failed", "err", err)
	}
	fmt.Print(weekly)
	fmt.Print(experiments.RenderProfiles("Weekly motifs of interest (Fig 11)",
		experiments.WeeklyMotifsOfInterest(weekly)))

	daily, err := experiments.MineDailyMotifs(context.Background(), env)
	if err != nil {
		logger.Fatal("daily motifs failed", "err", err)
	}
	fmt.Print(daily)
	fmt.Print(experiments.RenderProfiles("Daily motifs of interest (Fig 14)",
		experiments.DailyMotifsOfInterest(daily)))
}

func runAggregate(env *experiments.Env) {
	w, err := experiments.Fig06WeeklyAggregation(context.Background(), env)
	if err != nil {
		logger.Fatal("weekly aggregation failed", "err", err)
	}
	fmt.Print(w)
	d, err := experiments.Fig08DailyAggregation(context.Background(), env)
	if err != nil {
		logger.Fatal("daily aggregation failed", "err", err)
	}
	fmt.Print(d)
}

func runStationary(env *experiments.Env) {
	share, err := experiments.TabStationaryShare(context.Background(), env)
	if err != nil {
		logger.Fatal("stationary share failed", "err", err)
	}
	fmt.Print(share)
	f7, err := experiments.Fig07StationaryGateways(context.Background(), env)
	if err != nil {
		logger.Fatal("stationary gateways failed", "err", err)
	}
	fmt.Print(f7)
}

func runBackground(env *experiments.Env) {
	res, err := experiments.Fig04BackgroundTau(context.Background(), env)
	if err != nil {
		logger.Fatal("background thresholds failed", "err", err)
	}
	fmt.Print(res)
}

func runSimilarity(env *experiments.Env, ids []string) {
	if len(ids) != 2 {
		logger.Fatal("similarity needs two gateway ids", "example", "gw001 gw002")
	}
	var series [][]float64
	for _, id := range ids {
		found := false
		for i := 0; i < env.Dep.NumHomes(); i++ {
			h := env.Home(i)
			if h.ID != id {
				continue
			}
			agg, err := h.Overall().FillMissing(0).Aggregate(3 * time.Hour)
			if err != nil {
				logger.Fatal("aggregation failed", "gw", id, "err", err)
			}
			series = append(series, agg.Values)
			found = true
			break
		}
		if !found {
			logger.Fatal("gateway not found", "gw", id)
		}
	}
	sim := env.Framework.Similarity(series[0], series[1])
	fmt.Printf("cor(%s, %s) = %.3f  (distance %.3f)\n", ids[0], ids[1], sim, 1-sim)
}
