// Command homesim generates a synthetic residential-gateway deployment and
// writes it to disk as per-gateway CSV files plus a deployment manifest.
//
// Usage:
//
//	homesim -out data/ [-homes 196] [-weeks 8] [-seed 20140317] [-survey]
//
// Each gateway becomes <out>/<id>.csv in the dataset package's schema; the
// manifest (<out>/deployment.json) records the configuration and per-home
// ground truth (archetype, residents, reliability) for evaluation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"homesight/internal/dataset"
	"homesight/internal/obs/slogx"
	"homesight/internal/synth"
)

// manifest is the deployment-level ground truth written next to the CSVs.
type manifest struct {
	Config synth.Config   `json:"config"`
	Homes  []manifestHome `json:"homes"`
}

type manifestHome struct {
	ID          string `json:"id"`
	Archetype   string `json:"archetype"`
	Residents   int    `json:"residents"`
	Reliability string `json:"reliability"`
	Fiber       bool   `json:"fiber"`
	Devices     int    `json:"devices"`
}

func main() {
	logger := slogx.With("component", "homesim")

	out := flag.String("out", "data", "output directory")
	homes := flag.Int("homes", 0, "number of gateways (default 196)")
	weeks := flag.Int("weeks", 0, "campaign length in weeks (default 8)")
	seed := flag.Int64("seed", 0, "master seed (default 20140317)")
	survey := flag.Bool("survey", false, "include resident counts for the survey subset")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	cfg := synth.Config{Homes: *homes, Weeks: *weeks, Seed: *seed}
	dep := synth.NewDeployment(cfg)
	cfg = dep.Config()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		logger.Fatal("mkdir failed", "dir", *out, "err", err)
	}

	man := manifest{Config: cfg}
	for i := 0; i < dep.NumHomes(); i++ {
		h := dep.Home(i)
		g := dataset.FromSynthHome(h, 0, *survey && i < 49)
		path := filepath.Join(*out, h.ID+".csv")
		if err := writeGateway(path, g); err != nil {
			logger.Fatal("gateway write failed", "path", path, "err", err)
		}
		man.Homes = append(man.Homes, manifestHome{
			ID:          h.ID,
			Archetype:   string(h.Archetype),
			Residents:   h.Residents,
			Reliability: string(h.Reliability),
			Fiber:       h.Fiber,
			Devices:     len(h.Devices),
		})
		if !*quiet && (i+1)%20 == 0 {
			logger.Info("progress", "written", i+1, "total", dep.NumHomes())
		}
	}

	manPath := filepath.Join(*out, "deployment.json")
	f, err := os.Create(manPath)
	if err != nil {
		logger.Fatal("manifest create failed", "path", manPath, "err", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		logger.Fatal("manifest encode failed", "path", manPath, "err", err)
	}
	if err := f.Close(); err != nil {
		logger.Fatal("manifest close failed", "path", manPath, "err", err)
	}
	if !*quiet {
		fmt.Printf("wrote %d gateways and %s\n", dep.NumHomes(), manPath)
	}
}

func writeGateway(path string, g *dataset.Gateway) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSV(f, g); err != nil {
		_ = f.Close() //homesight:ignore unchecked-close — write error wins
		return err
	}
	return f.Close()
}
