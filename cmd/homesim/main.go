// Command homesim generates a synthetic residential-gateway deployment and
// writes it to disk as per-gateway CSV files plus a deployment manifest.
//
// Usage:
//
//	homesim -out data/ [-homes 196] [-weeks 8] [-seed 20140317] [-survey]
//	homesim -fleet 4 [-fleet-kill] -out data/ [-homes 32] [-weeks 1]
//
// Each gateway becomes <out>/<id>.csv in the dataset package's schema; the
// manifest (<out>/deployment.json) records the configuration and per-home
// ground truth (archetype, residents, reliability) for evaluation.
//
// -fleet N runs the sharded-ingest load campaign instead: the
// deployment streams through a consistent-hash router into N in-process
// shards whose partitions land under <out>/fleet/shard-NNNN/, and the
// aggregate throughput and delivery accounting are printed. -fleet-kill
// crash-stops one shard mid-campaign to demonstrate the rebalance +
// catch-up-replay protocol (see FLEET.md); the accounting printed at
// the end must still reconcile exactly.
//
// -live adds a livestats tracker to every shard, polls the fleet's
// live view mid-campaign (the same snapshots cmd/collector serves as
// /api/v1/homes/{gw}/live) and, after the drain, reconciles every
// home's online answer against the batch pipeline recomputed over the
// recovered partitions, printing the online-vs-offline deltas. Exceeding
// the documented tolerances (STREAMING.md) is an error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"homesight/internal/corrsim"
	"homesight/internal/dataset"
	"homesight/internal/dominance"
	"homesight/internal/fleet"
	"homesight/internal/gateway"
	"homesight/internal/livestats"
	"homesight/internal/obs"
	"homesight/internal/obs/slogx"
	"homesight/internal/store"
	"homesight/internal/synth"
)

// manifest is the deployment-level ground truth written next to the CSVs.
type manifest struct {
	Config synth.Config   `json:"config"`
	Homes  []manifestHome `json:"homes"`
}

type manifestHome struct {
	ID          string `json:"id"`
	Archetype   string `json:"archetype"`
	Residents   int    `json:"residents"`
	Reliability string `json:"reliability"`
	Fiber       bool   `json:"fiber"`
	Devices     int    `json:"devices"`
}

func main() {
	logger := slogx.With("component", "homesim")

	out := flag.String("out", "data", "output directory")
	homes := flag.Int("homes", 0, "number of gateways (default 196)")
	weeks := flag.Int("weeks", 0, "campaign length in weeks (default 8)")
	seed := flag.Int64("seed", 0, "master seed (default 20140317)")
	survey := flag.Bool("survey", false, "include resident counts for the survey subset")
	fleetN := flag.Int("fleet", 0, "run the sharded-ingest load campaign with this many shards instead of writing CSVs")
	fleetKill := flag.Bool("fleet-kill", false, "fleet campaign: crash-stop one shard mid-load to exercise rebalance + replay")
	liveStats := flag.Bool("live", false, "fleet campaign: run per-shard live analytics, poll them mid-load and reconcile against the batch pipeline")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	cfg := synth.Config{Homes: *homes, Weeks: *weeks, Seed: *seed}
	dep := synth.NewDeployment(cfg)
	cfg = dep.Config()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		logger.Fatal("mkdir failed", "dir", *out, "err", err)
	}

	if *fleetN > 0 {
		if err := runFleetCampaign(dep, *fleetN, filepath.Join(*out, "fleet"), *fleetKill, *liveStats); err != nil {
			logger.Fatal("fleet campaign failed", "err", err)
		}
		return
	}

	man := manifest{Config: cfg}
	for i := 0; i < dep.NumHomes(); i++ {
		h := dep.Home(i)
		g := dataset.FromSynthHome(h, 0, *survey && i < 49)
		path := filepath.Join(*out, h.ID+".csv")
		if err := writeGateway(path, g); err != nil {
			logger.Fatal("gateway write failed", "path", path, "err", err)
		}
		man.Homes = append(man.Homes, manifestHome{
			ID:          h.ID,
			Archetype:   string(h.Archetype),
			Residents:   h.Residents,
			Reliability: string(h.Reliability),
			Fiber:       h.Fiber,
			Devices:     len(h.Devices),
		})
		if !*quiet && (i+1)%20 == 0 {
			logger.Info("progress", "written", i+1, "total", dep.NumHomes())
		}
	}

	manPath := filepath.Join(*out, "deployment.json")
	f, err := os.Create(manPath)
	if err != nil {
		logger.Fatal("manifest create failed", "path", manPath, "err", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		logger.Fatal("manifest encode failed", "path", manPath, "err", err)
	}
	if err := f.Close(); err != nil {
		logger.Fatal("manifest close failed", "path", manPath, "err", err)
	}
	if !*quiet {
		fmt.Printf("wrote %d gateways and %s\n", dep.NumHomes(), manPath)
	}
}

// runFleetCampaign streams the deployment minute-major through a
// router into n in-process shards under dir. With kill set, the shard
// owning the first gateway is crash-stopped 40% through the campaign;
// the router's rebalance + catch-up replay must absorb the loss, and
// the printed accounting reconciles Sends, replays and reassignments
// exactly (the TestFaultShardKill identity).
func runFleetCampaign(dep *synth.Deployment, n int, dir string, kill, live bool) error {
	cfg := dep.Config()
	metrics := fleet.NewFleetMetrics(obs.NewRegistry())
	fcfg := fleet.Config{
		Dir: dir, Shards: n,
		Start: cfg.Start, Step: time.Minute,
		Sync: store.SyncAlways, // acked ⇒ durable, the kill drill's premise
		Metrics: metrics,
	}
	if live {
		fcfg.Live = &livestats.Config{}
	}
	f, err := fleet.Start(fcfg)
	if err != nil {
		return err
	}
	r, err := fleet.NewRouter(fleet.RouterConfig{
		Shards: f.Addrs(), Metrics: metrics, Replay: f.ReplayFunc(),
	})
	if err != nil {
		return err
	}
	victim := -1
	killAt := -1
	if kill {
		victimName := r.ShardFor(dep.Home(0).ID)
		if _, err := fmt.Sscanf(victimName, "shard-%d", &victim); err != nil {
			return fmt.Errorf("bad shard name %q", victimName)
		}
		killAt = cfg.Minutes() * 2 / 5
	}
	// One emitter per home, held across the whole campaign: Emit turns
	// per-minute traffic into the gateway's cumulative counters, so the
	// emitter's state must span minutes.
	emits := make([]func(int) gateway.Report, dep.NumHomes())
	for i := range emits {
		h := dep.Home(i)
		traffic := h.Traffic()
		em := gateway.NewEmitter(h.ID)
		emits[i] = func(m int) gateway.Report {
			var dms []gateway.DeviceMinute
			for _, dt := range traffic {
				dms = append(dms, gateway.DeviceMinute{
					MAC:      dt.Spec.Device.MAC,
					Name:     dt.Spec.Device.Name,
					InBytes:  dt.In.Values[m],
					OutBytes: dt.Out.Values[m],
				})
			}
			return em.Emit(cfg.Start.Add(time.Duration(m)*time.Minute), dms)
		}
	}
	ctx := context.Background()
	start := time.Now()
	sent := 0
	// With -live the fleet view is polled at quarter marks — the same
	// lookup the /live endpoint performs, here hitting the trackers
	// directly since the shards are in-process.
	pollAt := cfg.Minutes() / 4
	if pollAt == 0 {
		pollAt = 1
	}
	for m := 0; m < cfg.Minutes(); m++ {
		if m == killAt {
			fmt.Printf("fleet: killing shard-%04d at minute %d of %d\n", victim, m, cfg.Minutes())
			f.Kill(victim)
		}
		if live && m > 0 && m%pollAt == 0 {
			gw := dep.Home(0).ID
			if snap, ok := f.LiveSnapshot(gw); ok {
				fmt.Printf("live: minute %d %s: %d reports, %d devices, %d dominants\n",
					m, gw, snap.Reports, len(snap.Devices), len(snap.Dominance().Dominants))
			} else {
				fmt.Printf("live: minute %d %s: no snapshot yet\n", m, gw)
			}
		}
		for i := range emits {
			rep := emits[i](m)
			if len(rep.Devices) == 0 {
				continue
			}
			if err := r.Send(ctx, rep); err != nil {
				return fmt.Errorf("minute %d gateway %s: %w", m, rep.GatewayID, err)
			}
			sent++
		}
	}
	if err := r.Flush(ctx); err != nil {
		return err
	}
	stats := r.Stats()
	elapsed := time.Since(start)
	if err := r.Close(); err != nil {
		return err
	}
	if err := f.Drain(); err != nil {
		return err
	}
	fmt.Printf("fleet: routed %d reports in %s (%.0f reports/s) across %d shards (%d live)\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), n, len(r.Live()))
	fmt.Printf("router: %d batches flushed, %d rebalances, %d replayed, %d reassigned\n",
		stats.BatchesFlushed, stats.Rebalances, stats.ReplayedReports, stats.ReassignedReports)
	for i := 0; i < n; i++ {
		s := f.Shard(i)
		st := s.Stats()
		ss := s.StoreStats()
		fmt.Printf("  %s  reports=%d points=%d dups=%d frames=%d conns=%d\n",
			s.Name(), st.ReportsAppended, ss.Points, ss.DupPoints, st.FramesDecoded, st.ConnsOpened)
	}
	// The routing identity: every report entered the ring exactly once
	// per routing decision, or the accounting is broken.
	if want := int64(sent) + stats.ReplayedReports + stats.ReassignedReports; stats.ReportsRouted != want {
		return fmt.Errorf("accounting mismatch: %d routed != %d sent + %d replayed + %d reassigned",
			stats.ReportsRouted, sent, stats.ReplayedReports, stats.ReassignedReports)
	}
	fmt.Printf("accounting: %d routed = %d sent + %d replayed + %d reassigned ✓\n",
		stats.ReportsRouted, sent, stats.ReplayedReports, stats.ReassignedReports)
	if live {
		return reconcileLive(f, dir)
	}
	return nil
}

// coeffDelta is |a-b| with the NaN/NaN degenerate case (both pipelines
// agreeing a coefficient is undefined) counted as zero divergence.
func coeffDelta(a, b float64) float64 {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	return math.Abs(a - b)
}

// reconcileLive compares every home's final online snapshot against the
// batch pipeline recomputed over the recovered partitions — the ground
// truth the /live answers claim to track — and prints the worst deltas.
// Divergence beyond the documented tolerances (Pearson is an exact
// accumulator; the rank coefficients carry the reservoir's ±0.15
// beyond RankCap, and the similarity gate — a maximum over all three —
// inherits it; see STREAMING.md) is an error, so a -fleet-kill -live
// run doubles as a reconciliation drill from the command line.
func reconcileLive(f *fleet.Fleet, dir string) error {
	ctx := context.Background()
	dirs, err := fleet.LivePartitions(dir)
	if err != nil {
		return err
	}
	offline := make(map[string]*livestats.OfflineHome)
	for _, d := range dirs {
		st, err := store.Open(store.Config{Dir: d})
		if err != nil {
			return fmt.Errorf("reopening partition %s: %w", d, err)
		}
		for _, gw := range st.Gateways() {
			off, err := livestats.Offline(ctx, st, gw, corrsim.Measure{}, dominance.DefaultPhi)
			if err != nil {
				_ = st.Close() //homesight:ignore unchecked-close — recompute error wins
				return fmt.Errorf("offline recompute of %s: %w", gw, err)
			}
			offline[gw] = off
		}
		if err := st.Close(); err != nil {
			return err
		}
	}
	gws := make([]string, 0, len(offline))
	for gw := range offline {
		gws = append(gws, gw)
	}
	sort.Strings(gws)
	var maxPearson, maxRank, maxSim float64
	rows, domMismatches := 0, 0
	for _, gw := range gws {
		snap, ok := f.LiveSnapshot(gw)
		if !ok {
			return fmt.Errorf("%s: in the recovered history but not in any live tracker", gw)
		}
		off := offline[gw]
		liveDoms := make(map[string]bool)
		for _, d := range snap.Devices {
			det, found := off.Details[d.Device.MAC]
			if !found {
				return fmt.Errorf("%s/%s: live device unknown to the batch pipeline", gw, d.Device.MAC)
			}
			rows++
			maxPearson = math.Max(maxPearson, coeffDelta(d.Pearson.Coeff, det.Pearson.Coeff))
			maxRank = math.Max(maxRank, coeffDelta(d.Spearman.Coeff, det.Spearman.Coeff))
			maxRank = math.Max(maxRank, coeffDelta(d.Kendall.Coeff, det.Kendall.Coeff))
			maxSim = math.Max(maxSim, coeffDelta(d.Similarity, det.Similarity))
			if d.Dominant {
				liveDoms[d.Device.MAC] = true
			}
		}
		offDoms := make(map[string]bool)
		for _, sc := range off.Dominance.Dominants {
			offDoms[sc.Device.MAC] = true
		}
		if len(liveDoms) != len(offDoms) {
			domMismatches++
		} else {
			for mac := range offDoms {
				if !liveDoms[mac] {
					domMismatches++
					break
				}
			}
		}
	}
	fmt.Printf("live reconcile: %d homes, %d device rows against the recovered partitions\n", len(gws), rows)
	fmt.Printf("  max |Δ| online vs offline: pearson %.2e, rank %.3f, similarity %.2e\n", maxPearson, maxRank, maxSim)
	fmt.Printf("  dominant-set mismatches: %d\n", domMismatches)
	if maxPearson > 1e-6 {
		return fmt.Errorf("exact pearson accumulator diverged: %v", maxPearson)
	}
	if maxRank > 0.15 || maxSim > 0.15 {
		return fmt.Errorf("beyond the documented ±0.15 sketch tolerance: rank %v, similarity %v", maxRank, maxSim)
	}
	fmt.Println("  within documented tolerances ✓")
	return nil
}

func writeGateway(path string, g *dataset.Gateway) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSV(f, g); err != nil {
		_ = f.Close() //homesight:ignore unchecked-close — write error wins
		return err
	}
	return f.Close()
}
