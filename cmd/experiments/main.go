// Command experiments regenerates every table and figure of the paper's
// evaluation over the full synthetic deployment (196 gateways, 8 weeks) and
// prints them in order. Redirect the output to produce the raw material of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments | tee experiments_output.txt
//
// The experiments execute on the parallel runner engine; -parallel sets the
// worker count (output is byte-identical at any setting), -timeout bounds
// each experiment, and -metrics writes the per-run timing and cache-counter
// report as JSON. Flags scale the run down for quick looks (-homes, -weeks)
// and select a subset of experiments (-run, comma-separated ids like
// fig5,fig9).
//
// -debug-addr serves live observability (Prometheus /metrics, /healthz,
// /debug/pprof) while the run executes; -hold keeps that server up after
// the experiments finish so a scraper or profiler can attach to a short
// run. See OBSERVABILITY.md for the metric catalog.
//
// -data-dir points the Env at a homestore directory written by the
// collector: gateways present in the store are analysed from the
// persisted reports (the measurement path), the rest stay synthetic.
// See STORAGE.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"homesight/internal/experiments"
	"homesight/internal/obs"
	"homesight/internal/obs/slogx"
	"homesight/internal/runner"
	"homesight/internal/telemetry"
)

func main() {
	homes := flag.Int("homes", 196, "number of gateways")
	weeks := flag.Int("weeks", 8, "campaign length in weeks")
	seed := flag.Int64("seed", 0, "master seed (default 20140317)")
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for the engine and per-gateway fan-out (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "per-experiment timeout (0 = none)")
	metricsPath := flag.String("metrics", "", `write run metrics JSON to this path ("-" = stderr)`)
	debugAddr := flag.String("debug-addr", "",
		"serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:8081; empty = off)")
	hold := flag.Duration("hold", 0,
		"keep the -debug-addr server up this long after the run (0 = exit immediately)")
	dataDir := flag.String("data-dir", "",
		"load persisted gateway series from this homestore directory (empty = fully synthetic)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := slogx.With("component", "experiments")
	if lvl, err := slogx.ParseLevel(*logLevel); err != nil {
		logger.Fatal("bad flag", "flag", "log-level", "err", err)
	} else {
		slogx.SetLevel(lvl)
	}

	// One registry carries all three layers: runner timings, Env cache
	// counters, and the ingest family (pre-registered at zero here — this
	// binary runs no collector, but dashboards want uniform series).
	reg := obs.NewRegistry()
	_ = telemetry.NewIngestMetrics(reg)
	if *debugAddr != "" {
		srv, err := obs.NewServer(*debugAddr, reg)
		if err != nil {
			logger.Fatal("debug server failed", "addr", *debugAddr, "err", err)
		}
		defer func() { _ = srv.Close() }() //homesight:ignore unchecked-close — best-effort shutdown at exit
		logger.Info("debug server listening", "addr", srv.Addr())
	}

	opts := []experiments.Option{
		experiments.WithHomes(*homes),
		experiments.WithWeeks(*weeks),
		experiments.WithParallelism(*parallel),
		experiments.WithRegistry(reg),
	}
	if *seed != 0 {
		opts = append(opts, experiments.WithSeed(*seed))
	}
	if *dataDir != "" {
		opts = append(opts, experiments.WithStore(*dataDir))
	}
	env, err := experiments.NewEnv(opts...)
	if err != nil {
		logger.Fatal("env setup failed", "err", err)
	}
	defer func() {
		if err := env.Close(); err != nil {
			logger.Error("env close failed", "err", err)
		}
	}()
	if st := env.Store(); st != nil {
		backed := 0
		for i := 0; i < env.Dep.NumHomes(); i++ {
			if env.StoreBacked(i) {
				backed++
			}
		}
		logger.Info("store attached", "dir", *dataDir,
			"gateways", len(st.Gateways()), "homes_backed", backed)
	}

	var results experiments.Results
	registry := runner.NewRegistry()
	for _, x := range runner.StandardExperiments(&results) {
		if err := registry.Register(x); err != nil {
			logger.Fatal("experiment registration failed", "err", err)
		}
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			if _, known := registry.Get(id); !known {
				logger.Fatal("unknown experiment id", "id", id)
			}
			selected[id] = true
		}
	}
	var exps []runner.Experiment
	for _, x := range registry.Experiments() {
		if len(selected) > 0 && !selected[x.ID()] {
			continue
		}
		exps = append(exps, x)
	}

	fmt.Printf("homesight experiments — %d gateways, %d weeks, seed %d\n\n",
		env.Dep.Config().Homes, env.Dep.Config().Weeks, env.Dep.Config().Seed)

	// Warming every shared cache only pays off when the full suite runs;
	// a -run subset skips the pre-pass and fills caches on demand.
	eng := runner.Engine{
		Parallelism: *parallel,
		Timeout:     *timeout,
		Obs:         runner.NewRunnerMetrics(reg),
		SkipWarm:    len(selected) > 0,
	}
	reports, metrics, runErr := eng.Run(context.Background(), env, exps)

	// Reports come back in registration order whatever the parallelism, so
	// stdout is byte-identical between -parallel=1 and -parallel=N. Timings
	// live in the metrics report, not here, for the same reason.
	for i, rep := range reports {
		if rep.Err != nil {
			continue
		}
		fmt.Printf("=== %s — %s\n%s\n", rep.ID, exps[i].Doc(), rep.Result.Text)
	}

	// With every experiment run, evaluate the paper's qualitative claims.
	if len(selected) == 0 && runErr == nil {
		fmt.Printf("=== shapes — qualitative claims\n%s\n",
			experiments.RenderShapeChecks(results.ShapeChecks()))
	}

	if err := writeMetrics(*metricsPath, metrics); err != nil {
		logger.Fatal("metrics write failed", "path", *metricsPath, "err", err)
	}
	if runErr != nil {
		logger.Fatal("run failed", "err", runErr)
	}
	if *debugAddr != "" && *hold > 0 {
		logger.Info("holding debug server", "hold", *hold)
		time.Sleep(*hold)
	}
}

// writeMetrics emits the run report to the given path ("" = skip,
// "-" = stderr so it composes with stdout redirection).
func writeMetrics(path string, m telemetry.RunMetrics) error {
	switch path {
	case "":
		return nil
	case "-":
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		_ = f.Close() //homesight:ignore unchecked-close — write error wins
		return err
	}
	return f.Close()
}
