// Command experiments regenerates every table and figure of the paper's
// evaluation over the full synthetic deployment (196 gateways, 8 weeks) and
// prints them in order. Redirect the output to produce the raw material of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments | tee experiments_output.txt
//
// The experiments execute on the parallel runner engine; -parallel sets the
// worker count (output is byte-identical at any setting), -timeout bounds
// each experiment, and -metrics writes the per-run timing and cache-counter
// report as JSON. Flags scale the run down for quick looks (-homes, -weeks)
// and select a subset of experiments (-run, comma-separated ids like
// fig5,fig9).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"homesight/internal/experiments"
	"homesight/internal/runner"
	"homesight/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	homes := flag.Int("homes", 196, "number of gateways")
	weeks := flag.Int("weeks", 8, "campaign length in weeks")
	seed := flag.Int64("seed", 0, "master seed (default 20140317)")
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for the engine and per-gateway fan-out (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "per-experiment timeout (0 = none)")
	metricsPath := flag.String("metrics", "", `write run metrics JSON to this path ("-" = stderr)`)
	flag.Parse()

	opts := []experiments.Option{
		experiments.WithHomes(*homes),
		experiments.WithWeeks(*weeks),
		experiments.WithParallelism(*parallel),
	}
	if *seed != 0 {
		opts = append(opts, experiments.WithSeed(*seed))
	}
	env, err := experiments.NewEnv(opts...)
	if err != nil {
		log.Fatal(err)
	}

	var results experiments.Results
	reg := runner.NewRegistry()
	for _, x := range runner.StandardExperiments(&results) {
		if err := reg.Register(x); err != nil {
			log.Fatal(err)
		}
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			if _, known := reg.Get(id); !known {
				log.Fatalf("unknown experiment id %q", id)
			}
			selected[id] = true
		}
	}
	var exps []runner.Experiment
	for _, x := range reg.Experiments() {
		if len(selected) > 0 && !selected[x.ID()] {
			continue
		}
		exps = append(exps, x)
	}

	fmt.Printf("homesight experiments — %d gateways, %d weeks, seed %d\n\n",
		env.Dep.Config().Homes, env.Dep.Config().Weeks, env.Dep.Config().Seed)

	eng := runner.Engine{Parallelism: *parallel, Timeout: *timeout}
	reports, metrics, runErr := eng.Run(context.Background(), env, exps)

	// Reports come back in registration order whatever the parallelism, so
	// stdout is byte-identical between -parallel=1 and -parallel=N. Timings
	// live in the metrics report, not here, for the same reason.
	for i, rep := range reports {
		if rep.Err != nil {
			continue
		}
		fmt.Printf("=== %s — %s\n%s\n", rep.ID, exps[i].Doc(), rep.Result.Text)
	}

	// With every experiment run, evaluate the paper's qualitative claims.
	if len(selected) == 0 && runErr == nil {
		fmt.Printf("=== shapes — qualitative claims\n%s\n",
			experiments.RenderShapeChecks(results.ShapeChecks()))
	}

	if err := writeMetrics(*metricsPath, metrics); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

// writeMetrics emits the run report to the given path ("" = skip,
// "-" = stderr so it composes with stdout redirection).
func writeMetrics(path string, m telemetry.RunMetrics) error {
	switch path {
	case "":
		return nil
	case "-":
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
