// Command experiments regenerates every table and figure of the paper's
// evaluation over the full synthetic deployment (196 gateways, 8 weeks) and
// prints them in order. Redirect the output to produce the raw material of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments | tee experiments_output.txt
//
// Flags scale the run down for quick looks (-homes, -weeks) and select a
// subset of experiments (-run, comma-separated ids like fig5,fig9).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"homesight/internal/experiments"
	"homesight/internal/synth"
)

// experiment binds an id to a runner.
type experiment struct {
	id  string
	fn  func(*experiments.Env) (fmt.Stringer, error)
	doc string
}

// stringerFn adapts plain-result runners.
func wrap(f func(*experiments.Env) fmt.Stringer) func(*experiments.Env) (fmt.Stringer, error) {
	return func(e *experiments.Env) (fmt.Stringer, error) { return f(e), nil }
}

type str string

func (s str) String() string { return string(s) }

// results accumulates every runner's output so the final shape-check pass
// can evaluate the paper's qualitative claims across experiments.
var results experiments.Results

var all = []experiment{
	{"fig1", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Fig01 = experiments.Fig01TypicalGateway(e)
		return results.Fig01
	}),
		"typical gateway distribution anatomy"},
	{"inout", wrap(func(e *experiments.Env) fmt.Stringer {
		results.InOut = experiments.TabInOutCorrelation(e)
		return results.InOut
	}),
		"incoming/outgoing correlation"},
	{"fig2", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Fig02 = experiments.Fig02ACFCCF(e)
		return results.Fig02
	}),
		"autocorrelation and cross-correlation"},
	{"unitroot", wrap(func(e *experiments.Env) fmt.Stringer {
		results.UnitRoot = experiments.TabStationarityTests(e)
		return results.UnitRoot
	}),
		"KPSS/ADF/KS stationarity tests"},
	{"devcount", wrap(func(e *experiments.Env) fmt.Stringer {
		results.DevCount = experiments.TabDeviceCountCorrelation(e)
		return results.DevCount
	}),
		"traffic vs connected-device count"},
	{"fig3", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Fig03 = experiments.Fig03Clustering(e)
		return results.Fig03
	}),
		"correlation-distance clustering"},
	{"fig4", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Fig04 = experiments.Fig04BackgroundTau(e)
		return results.Fig04
	}),
		"background threshold distribution"},
	{"heuristic", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Heuristic = experiments.TabHeuristicValidation(e)
		return results.Heuristic
	}),
		"device-type heuristic vs survey truth"},
	{"fig5", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Fig05 = experiments.Fig05DominantDevices(e)
		return results.Fig05
	}),
		"dominant devices and types"},
	{"agreement", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Agreement = experiments.TabDominanceAgreement(e)
		return results.Agreement
	}),
		"dominance notion agreement"},
	{"residents", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Residents = experiments.TabResidentsCorrelation(e)
		return results.Residents
	}),
		"dominants vs residents survey"},
	{"ablation", wrap(func(e *experiments.Env) fmt.Stringer {
		results.Ablation = experiments.TabSimilarityAblation(e)
		return results.Ablation
	}),
		"similarity measure variant ablation"},
	{"fig6", func(e *experiments.Env) (fmt.Stringer, error) {
		var err error
		results.Fig06, err = experiments.Fig06WeeklyAggregation(e)
		return results.Fig06, err
	}, "weekly aggregation curves"},
	{"fig7", func(e *experiments.Env) (fmt.Stringer, error) {
		var err error
		results.Fig07, err = experiments.Fig07StationaryGateways(e)
		return results.Fig07, err
	}, "stationary gateways per granularity"},
	{"fig8", func(e *experiments.Env) (fmt.Stringer, error) {
		var err error
		results.Fig08, err = experiments.Fig08DailyAggregation(e)
		return results.Fig08, err
	}, "daily aggregation curves"},
	{"stationary", func(e *experiments.Env) (fmt.Stringer, error) {
		var err error
		results.Share, err = experiments.TabStationaryShare(e)
		return results.Share, err
	}, "stationary share with/without background"},
	{"motifs", runMotifs, "weekly and daily motifs (figs 9-16)"},
}

// runMotifs chains Figs. 9-16: mining, motifs of interest and per-motif
// dominance for both families.
func runMotifs(e *experiments.Env) (fmt.Stringer, error) {
	var b strings.Builder

	var err error
	if results.Weekly, err = experiments.MineWeeklyMotifs(e); err != nil {
		return nil, err
	}
	b.WriteString(results.Weekly.String())
	results.WeeklyOfInterest = experiments.WeeklyMotifsOfInterest(results.Weekly)
	b.WriteString(experiments.RenderProfiles("Fig 11 — weekly motifs of interest", results.WeeklyOfInterest))
	results.WeeklyDominance = experiments.AnalyzeMotifDominance(e, results.Weekly, results.WeeklyOfInterest)
	b.WriteString(experiments.RenderMotifDominance("Fig 12/13 — weekly motifs", results.WeeklyDominance, false))

	if results.Daily, err = experiments.MineDailyMotifs(e); err != nil {
		return nil, err
	}
	b.WriteString(results.Daily.String())
	results.DailyOfInterest = experiments.DailyMotifsOfInterest(results.Daily)
	b.WriteString(experiments.RenderProfiles("Fig 14 — daily motifs of interest", results.DailyOfInterest))
	results.DailyDominance = experiments.AnalyzeMotifDominance(e, results.Daily, results.DailyOfInterest)
	b.WriteString(experiments.RenderMotifDominance("Fig 15/16 — daily motifs", results.DailyDominance, true))

	return str(b.String()), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	homes := flag.Int("homes", 196, "number of gateways")
	weeks := flag.Int("weeks", 8, "campaign length in weeks")
	seed := flag.Int64("seed", 0, "master seed (default 20140317)")
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	selected := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}

	env := experiments.NewEnv(synth.Config{Homes: *homes, Weeks: *weeks, Seed: *seed})
	fmt.Printf("homesight experiments — %d gateways, %d weeks, seed %d\n\n",
		env.Dep.Config().Homes, env.Dep.Config().Weeks, env.Dep.Config().Seed)

	for _, ex := range all {
		if len(selected) > 0 && !selected[ex.id] {
			continue
		}
		start := time.Now()
		res, err := ex.fn(env)
		if err != nil {
			log.Fatalf("%s: %v", ex.id, err)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n%s\n", ex.id, ex.doc, time.Since(start).Seconds(), res)
	}

	// With every experiment run, evaluate the paper's qualitative claims.
	if len(selected) == 0 {
		fmt.Printf("=== shapes — qualitative claims\n%s\n",
			experiments.RenderShapeChecks(results.ShapeChecks()))
	}
}
