// Command collector runs the central telemetry sink of Sec. 3: gateways
// connect over TCP and stream one JSON report per minute; the collector
// reconstructs per-device traffic and (optionally) feeds the streaming
// motif stage.
//
// Usage:
//
//	collector -addr :7800                 # serve until interrupted
//	collector -demo -homes 5 -weeks 1    # spawn in-process reporters
//
// In demo mode the command simulates the given homes, replays their
// campaign through real TCP connections at full speed, then prints the
// per-gateway totals and the motifs the streaming stage discovered.
//
// -debug-addr serves live observability (Prometheus /metrics, /healthz,
// /debug/pprof) alongside the ingest listener; the homesight_ingest_*
// series mirror telemetry.IngestStats exactly. See OBSERVABILITY.md.
//
// -data-dir persists every ingested report to a homestore directory
// (internal/store): a WAL-backed, compressed time-series store that
// survives process crashes. Inspect it with cmd/homestore; the fsync
// policy is selected by -fsync (interval, always, never). See
// STORAGE.md.
//
// -live runs a livestats.Tracker on the ingest callback — the paper's
// correlation, threshold and dominance definitions as O(1) online
// operators — and serves GET /api/v1/homes/{gw}/live on -debug-addr
// (with -data-dir the store-backed query routes mount alongside it).
// -hold keeps a demo process, and with it the debug server, alive for
// the given duration after the campaign so the live tier can be
// inspected. See STREAMING.md.
//
// -shards N runs the fleet ingest tier instead of the single-process
// collector: N batch-frame shard listeners, each owning a homestore
// partition under <data-dir>/shard-NNNN/ (requires -data-dir). With
// -demo the synthetic campaign is routed through an in-process
// consistent-hash router; without it the shards serve until
// interrupted. -router name=addr,... replays the demo campaign against
// an already-running fleet's shard listeners instead. See FLEET.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"homesight/internal/fleet"
	"homesight/internal/gateway"
	"homesight/internal/livestats"
	"homesight/internal/obs"
	"homesight/internal/obs/slogx"
	"homesight/internal/query"
	homestore "homesight/internal/store"
	"homesight/internal/synth"
	"homesight/internal/telemetry"
)

// parseSyncPolicy maps the -fsync flag vocabulary onto store.SyncPolicy.
func parseSyncPolicy(s string) (homestore.SyncPolicy, error) {
	switch s {
	case "interval":
		return homestore.SyncInterval, nil
	case "always":
		return homestore.SyncAlways, nil
	case "never":
		return homestore.SyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want interval, always or never)", s)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	demo := flag.Bool("demo", false, "replay a synthetic deployment through the collector")
	homes := flag.Int("homes", 5, "demo: number of gateways")
	weeks := flag.Int("weeks", 1, "demo: campaign length")
	seed := flag.Int64("seed", 0, "demo: master seed")
	readTimeout := flag.Duration("read-timeout", telemetry.DefaultReadTimeout,
		"per-connection read deadline (negative disables)")
	queue := flag.Int("queue", telemetry.DefaultQueueSize,
		"ingest queue bound (full queue backpressures the sockets)")
	metricsPath := flag.String("metrics", "",
		`demo: write ingest accounting as JSON to this path ("-" = stderr)`)
	debugAddr := flag.String("debug-addr", "",
		"serve /metrics, /healthz and /debug/pprof on this address (empty = off)")
	dataDir := flag.String("data-dir", "",
		"persist ingested reports to this homestore directory (empty = in-memory only)")
	fsync := flag.String("fsync", "interval",
		"homestore WAL fsync policy: interval, always, never")
	shards := flag.Int("shards", 0,
		"run the sharded fleet ingest tier with this many shards (requires -data-dir)")
	routerTo := flag.String("router", "",
		"demo: route the campaign to an external fleet, comma-separated name=addr pairs")
	live := flag.Bool("live", false,
		"maintain O(1) live analytics per home and serve /api/v1/homes/{gw}/live on -debug-addr")
	hold := flag.Duration("hold", 0,
		"demo: keep the process (and -debug-addr) up this long after the campaign completes")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := slogx.With("component", "collector")
	if lvl, err := slogx.ParseLevel(*logLevel); err != nil {
		logger.Fatal("bad flag", "flag", "log-level", "err", err)
	} else {
		slogx.SetLevel(lvl)
	}

	cfg := synth.Config{Homes: *homes, Weeks: *weeks, Seed: *seed}
	dep := synth.NewDeployment(cfg)
	cfg = dep.Config()

	store := telemetry.NewStore(cfg.Start, time.Minute)
	streaming := &telemetry.StreamingMotifs{}

	reg := obs.NewRegistry()
	// The debug server starts once the serving mode has built its query
	// surface: with -live the mode hands over an API handler and the
	// server mounts it under /api/v1/ next to /metrics.
	var debugSrv *obs.Server
	defer func() {
		if debugSrv != nil {
			_ = debugSrv.Close() //homesight:ignore unchecked-close — best-effort shutdown at exit
		}
	}()
	startDebug := func(api http.Handler) {
		if *debugAddr == "" {
			return
		}
		var opts []obs.ServerOption
		if api != nil {
			opts = append(opts, obs.WithHandler("/api/v1/", api))
		}
		srv, err := obs.NewServer(*debugAddr, reg, opts...)
		if err != nil {
			logger.Fatal("debug server failed", "addr", *debugAddr, "err", err)
		}
		debugSrv = srv
		logger.Info("debug server listening", "addr", srv.Addr())
	}

	if *routerTo != "" {
		startDebug(nil)
		routerDemo(logger, dep, *routerTo)
		return
	}
	if *shards > 0 {
		runFleet(logger, reg, dep, fleetOptions{
			Shards: *shards, Addr: *addr, DataDir: *dataDir, Fsync: *fsync,
			Demo: *demo, Live: *live, Hold: *hold, StartDebug: startDebug,
		})
		return
	}

	// The ingest store takes a single callback, so persistence composes
	// with the streaming stage in one closure: both observe every
	// successfully ingested report, in order.
	var persist *homestore.Store
	if *dataDir != "" {
		policy, err := parseSyncPolicy(*fsync)
		if err != nil {
			logger.Fatal("bad flag", "flag", "fsync", "err", err)
		}
		persist, err = homestore.Open(homestore.Config{
			Dir:     *dataDir,
			Start:   cfg.Start,
			Step:    time.Minute,
			Sync:    policy,
			Metrics: homestore.NewMetrics(reg),
		})
		if err != nil {
			logger.Fatal("store open failed", "dir", *dataDir, "err", err)
		}
		st := persist.Stats()
		logger.Info("persisting reports", "dir", *dataDir, "fsync", *fsync,
			"recovered_points", st.Points, "segments", st.Segments)
	}
	closeStore := func() {
		if persist == nil {
			return
		}
		st := persist.Stats()
		if err := persist.Close(); err != nil {
			logger.Error("store close failed", "err", err)
			return
		}
		logger.Info("store closed", "reports", st.Reports, "points", st.Points,
			"segments", st.Segments, "compression", st.Compression)
	}
	var tracker *livestats.Tracker
	if *live {
		tracker = livestats.NewTracker(livestats.Config{
			Start:   cfg.Start,
			Seed:    *seed,
			Metrics: livestats.NewMetrics(reg),
		})
		if persist != nil {
			// Warm the live state from the recovered history so the /live
			// answers pick up exactly where the last process left off; the
			// tracker's watermarks make the replay idempotent against the
			// reports about to stream in.
			n, err := tracker.Rebuild(context.Background(), persist)
			if err != nil {
				logger.Fatal("live rebuild failed", "dir", *dataDir, "err", err)
			}
			logger.Info("live state rebuilt", "reports", n, "homes", len(tracker.Homes()))
		}
	}
	switch {
	case persist != nil || tracker != nil:
		store.OnReport(func(rep gateway.Report) {
			streaming.Feed(rep)
			if persist != nil {
				if err := persist.Append(rep); err != nil {
					logger.Error("store append failed", "gateway", rep.GatewayID, "err", err)
				}
			}
			if tracker != nil {
				tracker.OnReport(rep)
			}
		})
	default:
		store.OnReport(streaming.Feed)
	}
	if tracker != nil {
		qcfg := query.Config{Live: tracker, Registry: reg}
		if persist != nil {
			qcfg.Store = persist
		}
		startDebug(query.New(qcfg).Handler())
	} else {
		startDebug(nil)
	}

	col, err := telemetry.NewCollectorConfig(*addr, store, telemetry.CollectorConfig{
		ReadTimeout: *readTimeout,
		QueueSize:   *queue,
		Metrics:     telemetry.NewIngestMetrics(reg),
	})
	if err != nil {
		logger.Fatal("listen failed", "addr", *addr, "err", err)
	}
	defer func() { _ = col.Close() }() //homesight:ignore unchecked-close — best-effort shutdown at process exit
	logger.Info("listening", "addr", col.Addr())

	if !*demo {
		// Serve until interrupted.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		st := col.Stats()
		logger.Info("shutting down", "gateways", len(store.GatewayIDs()))
		logger.Info("ingest accounting",
			"reports", st.ReportsIngested, "dropped", st.LinesDropped,
			"rejected", st.IngestErrors, "shed", st.ErrorsShed)
		closeStore()
		return
	}

	// Drain the error channel so per-line drop reports reach the log
	// instead of being shed once the channel fills.
	go func() {
		for err := range col.Errs {
			logger.Warn("ingest error", "err", err)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < dep.NumHomes(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := replayHome(col.Addr(), dep, i); err != nil {
				logger.Error("replay failed", "gateway", i, "err", err)
			}
		}(i)
	}
	wg.Wait()
	// All reporters have disconnected. Wait until every gateway's stream has
	// been accepted (its first report ingested), then drain: the collector
	// stops accepting and joins the connection handlers at EOF. Only after
	// that are the recorders safe to read — gateway.Recorder itself is not
	// locked against concurrent ingestion.
	deadline := time.Now().Add(10 * time.Second)
	for len(store.GatewayIDs()) < dep.NumHomes() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if err := col.Drain(); err != nil {
		logger.Fatal("drain failed", "err", err)
	}
	streaming.Flush()
	closeStore()

	stats := col.Stats()
	fmt.Printf("ingest: %d reports, %d lines dropped, %d rejected, %d errors shed, %d conns\n",
		stats.ReportsIngested, stats.LinesDropped, stats.IngestErrors, stats.ErrorsShed, stats.ConnsOpened)
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, stats); err != nil {
			logger.Fatal("metrics write failed", "path", *metricsPath, "err", err)
		}
	}

	fmt.Println("gateway totals (reconstructed from counter reports):")
	for _, id := range store.GatewayIDs() {
		rec := store.Recorder(id)
		overall := rec.Overall(cfg.Minutes())
		fmt.Printf("  %s  devices=%d  total=%.3g bytes\n", id, len(rec.MACs()), overall.Total())
	}

	motifs := streaming.Motifs()
	fmt.Printf("streaming stage discovered %d daily motifs:\n", len(motifs))
	for _, m := range motifs {
		if m.Support() < 2 {
			continue
		}
		fmt.Printf("  motif %d: support %d across %d gateways\n", m.ID, m.Support(), len(m.Gateways()))
	}
	if tracker != nil {
		ls := tracker.Stats()
		fmt.Printf("live analytics: %d homes, %d devices, %d reports processed, %d stale rows\n",
			ls.Homes, ls.Devices, ls.ReportsProcessed, ls.StaleRows)
	}
	holdOpen(logger, *hold)
}

// holdOpen keeps a demo process — and with it the debug server and its
// /api/v1/ surface — alive after the campaign so the live tier can be
// curled before exit.
func holdOpen(logger *slogx.Logger, d time.Duration) {
	if d <= 0 {
		return
	}
	logger.Info("holding for inspection", "hold", d)
	time.Sleep(d)
}

// writeMetrics emits the run's ingest accounting in the RunMetrics
// schema shared with cmd/experiments ("-" = stderr, matching the
// -metrics contract documented in the README).
func writeMetrics(path string, stats telemetry.IngestStats) error {
	m := telemetry.RunMetrics{Ingest: &stats}
	if path == "-" {
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		_ = f.Close() //homesight:ignore unchecked-close — write error wins
		return err
	}
	return f.Close()
}

// fleetOptions carries the flag surface of the fleet mode into runFleet.
type fleetOptions struct {
	Shards  int
	Addr    string
	DataDir string
	Fsync   string
	Demo    bool
	Live    bool
	Hold    time.Duration
	// StartDebug boots the debug server once the fleet exists, mounting
	// the query handler (the Fleet as LiveSource) when one is given.
	StartDebug func(http.Handler)
}

// runFleet runs the sharded ingest tier: batch-frame shards over
// partitions under the data dir. In demo mode the synthetic campaign is
// routed through an in-process consistent-hash router and the run's
// accounting printed; otherwise the shards serve until interrupted.
// With Live each shard runs its own tracker and the fleet serves the
// union view through /api/v1/homes/{gw}/live on the debug server.
func runFleet(logger *slogx.Logger, reg *obs.Registry, dep *synth.Deployment, opt fleetOptions) {
	if opt.DataDir == "" {
		logger.Fatal("bad flag", "flag", "shards", "err", fmt.Errorf("-shards requires -data-dir"))
	}
	policy, err := parseSyncPolicy(opt.Fsync)
	if err != nil {
		logger.Fatal("bad flag", "flag", "fsync", "err", err)
	}
	cfg := dep.Config()
	metrics := fleet.NewFleetMetrics(reg)
	fcfg := fleet.Config{
		Dir: opt.DataDir, Shards: opt.Shards, Addr: opt.Addr,
		Start: cfg.Start, Step: time.Minute, Sync: policy, Metrics: metrics,
	}
	if opt.Live {
		// Shard trackers keep their instruments private (per-shard gauges
		// would fight over one registry); the shared registry still serves
		// the fleet and query metrics.
		fcfg.Live = &livestats.Config{}
	}
	f, err := fleet.Start(fcfg)
	if err != nil {
		logger.Fatal("fleet start failed", "dir", opt.DataDir, "err", err)
	}
	for _, sa := range f.Addrs() {
		logger.Info("shard listening", "shard", sa.Name, "addr", sa.Addr)
	}
	if opt.Live {
		opt.StartDebug(query.New(query.Config{Live: f, Registry: reg}).Handler())
	} else {
		opt.StartDebug(nil)
	}

	if !opt.Demo {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		logger.Info("shutting down fleet", "shards", opt.Shards)
		printShardStats(f, opt.Shards)
		if err := f.Close(); err != nil {
			logger.Error("fleet close failed", "err", err)
		}
		return
	}

	if err := fleetCampaign(logger, dep, f.Addrs(), metrics, f.ReplayFunc()); err != nil {
		logger.Fatal("fleet campaign failed", "err", err)
	}
	if err := f.Drain(); err != nil {
		logger.Fatal("fleet drain failed", "err", err)
	}
	printShardStats(f, opt.Shards)
	if opt.Live {
		fmt.Printf("live analytics: %d homes across the fleet\n", len(f.LiveHomes()))
	}
	holdOpen(logger, opt.Hold)
}

func printShardStats(f *fleet.Fleet, n int) {
	for i := 0; i < n; i++ {
		s := f.Shard(i)
		st := s.Stats()
		fmt.Printf("  %s  reports=%d frames=%d conns=%d append_errors=%d\n",
			s.Name(), st.ReportsAppended, st.FramesDecoded, st.ConnsOpened, st.AppendErrors)
	}
}

// routerDemo replays the synthetic campaign against an already-running
// fleet named by comma-separated name=addr pairs.
func routerDemo(logger *slogx.Logger, dep *synth.Deployment, spec string) {
	addrs, err := parseShardAddrs(spec)
	if err != nil {
		logger.Fatal("bad flag", "flag", "router", "err", err)
	}
	if err := fleetCampaign(logger, dep, addrs, nil, nil); err != nil {
		logger.Fatal("fleet campaign failed", "err", err)
	}
}

// parseShardAddrs parses the -router vocabulary: "shard-0000=host:port,
// shard-0001=host:port". Ring identity is the name, not the address, so
// the pairs must match the names the shards were started with.
func parseShardAddrs(spec string) ([]fleet.ShardAddr, error) {
	var out []fleet.ShardAddr
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad shard spec %q (want name=addr)", part)
		}
		out = append(out, fleet.ShardAddr{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shards in %q", spec)
	}
	return out, nil
}

// fleetCampaign streams the deployment's full campaign minute-major
// through a router over the given shards and prints the aggregate
// delivery accounting.
func fleetCampaign(logger *slogx.Logger, dep *synth.Deployment, addrs []fleet.ShardAddr, metrics *fleet.FleetMetrics, replay fleet.ReplayFunc) error {
	cfg := dep.Config()
	r, err := fleet.NewRouter(fleet.RouterConfig{Shards: addrs, Metrics: metrics, Replay: replay})
	if err != nil {
		return err
	}
	emits := make([]func(int) gateway.Report, dep.NumHomes())
	for i := range emits {
		h := dep.Home(i)
		traffic := h.Traffic()
		em := gateway.NewEmitter(h.ID)
		emits[i] = func(m int) gateway.Report {
			var dms []gateway.DeviceMinute
			for _, dt := range traffic {
				dms = append(dms, gateway.DeviceMinute{
					MAC:      dt.Spec.Device.MAC,
					Name:     dt.Spec.Device.Name,
					InBytes:  dt.In.Values[m],
					OutBytes: dt.Out.Values[m],
				})
			}
			return em.Emit(cfg.Start.Add(time.Duration(m)*time.Minute), dms)
		}
	}
	ctx := context.Background()
	start := time.Now()
	sent := 0
	for m := 0; m < cfg.Minutes(); m++ {
		for i := range emits {
			rep := emits[i](m)
			if len(rep.Devices) == 0 {
				continue
			}
			if err := r.Send(ctx, rep); err != nil {
				return fmt.Errorf("minute %d gateway %s: %w", m, rep.GatewayID, err)
			}
			sent++
		}
	}
	if err := r.Flush(ctx); err != nil {
		return err
	}
	stats := r.Stats()
	elapsed := time.Since(start)
	if err := r.Close(); err != nil {
		return err
	}
	logger.Info("fleet campaign complete", "shards", len(addrs), "live", len(r.Live()))
	fmt.Printf("fleet: routed %d reports in %s (%.0f reports/s) across %d shards\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), len(addrs))
	fmt.Printf("router: %d batches flushed, %d rebalances, %d replayed, %d reassigned\n",
		stats.BatchesFlushed, stats.Rebalances, stats.ReplayedReports, stats.ReassignedReports)
	return nil
}

// replayHome streams one home's full campaign through a TCP reporter.
func replayHome(addr string, dep *synth.Deployment, i int) error {
	h := dep.Home(i)
	traffic := h.Traffic()
	// Each gateway gets its own jitter seed so a fleet-wide collector
	// outage does not produce lockstep reconnect storms.
	rep, err := telemetry.DialConfig(addr, telemetry.ReporterConfig{Seed: int64(i) + 1})
	if err != nil {
		return err
	}
	em := gateway.NewEmitter(h.ID)
	cfg := dep.Config()
	for m := 0; m < cfg.Minutes(); m++ {
		var dms []gateway.DeviceMinute
		for _, dt := range traffic {
			dms = append(dms, gateway.DeviceMinute{
				MAC:      dt.Spec.Device.MAC,
				Name:     dt.Spec.Device.Name,
				InBytes:  dt.In.Values[m],
				OutBytes: dt.Out.Values[m],
			})
		}
		r := em.Emit(cfg.Start.Add(time.Duration(m)*time.Minute), dms)
		if len(r.Devices) == 0 {
			continue
		}
		if err := rep.Send(r); err != nil {
			_ = rep.Close() //homesight:ignore unchecked-close — send error wins
			return err
		}
	}
	// Close flushes the tail of the stream; its error is the result.
	return rep.Close()
}
