// Command homestore is the operator tool for homestore data directories
// (internal/store, STORAGE.md): the on-disk format the collector writes
// with -data-dir and the experiment runners read with -data-dir.
//
// Usage:
//
//	homestore inspect -dir DIR [-json]   # meta, stats, gateways, segments
//	homestore verify  -dir DIR           # checksum every block, check ordering
//	homestore compact -dir DIR           # merge all segments into one
//	homestore export  -dir DIR -out OUT  # write the dataset CSV bundle
//	homestore serve   -dir DIR -addr A   # HTTP query API + /metrics + pprof
//
// Every subcommand opens the store through the normal recovery path, so
// a torn WAL tail is repaired exactly as the collector would repair it
// on restart. `serve` mounts the internal/query API (/api/v1/...) on the
// observability server, so one port exposes the versioned JSON read API,
// Prometheus-format metrics and pprof together.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"homesight/internal/obs"
	"homesight/internal/obs/slogx"
	"homesight/internal/query"
	homestore "homesight/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: homestore <command> -dir <store-dir> [flags]

commands:
  inspect   print campaign meta, store stats, gateways and segments
  verify    re-read and checksum every block; non-zero exit on corruption
  compact   merge all segments into a single segment
  export    write the store as a dataset CSV bundle (-out required)
  serve     serve the HTTP query API plus /metrics and pprof (-addr)
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet("homestore "+cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "store data directory")
	asJSON := fs.Bool("json", false, "inspect: emit machine-readable JSON")
	out := fs.String("out", "", "export: destination directory for the CSV bundle")
	addr := fs.String("addr", "127.0.0.1:0", "serve: listen address for the query/metrics server")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "homestore: -dir is required")
		usage()
	}

	// serve shares one registry between the store and the query tier, so
	// /metrics exposes homesight_store_* and homesight_query_* together.
	cfg := homestore.Config{Dir: *dir}
	var reg *obs.Registry
	if cmd == "serve" {
		reg = obs.NewRegistry()
		cfg.Metrics = homestore.NewMetrics(reg)
	}
	s, err := homestore.Open(cfg)
	if err != nil {
		fatal("open %s: %v", *dir, err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			fatal("close: %v", err)
		}
	}()

	switch cmd {
	case "inspect":
		inspect(s, *asJSON)
	case "verify":
		if err := s.Verify(); err != nil {
			fatal("verify %s: %v", *dir, err)
		}
		st := s.Stats()
		fmt.Printf("ok: %d segments, %d segment points, %d series, %d WAL records intact\n",
			st.Segments, st.SegmentPoints, st.Series, st.WALRecords)
	case "compact":
		before := s.Stats()
		if err := s.Compact(); err != nil {
			fatal("compact %s: %v", *dir, err)
		}
		after := s.Stats()
		fmt.Printf("compacted %d segments (%d bytes) into %d (%d bytes), %d points, %.2fx compression\n",
			before.Segments, before.SegmentBytes, after.Segments, after.SegmentBytes,
			after.SegmentPoints, after.Compression)
	case "export":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "homestore export: -out is required")
			usage()
		}
		if err := s.Export(*out); err != nil {
			fatal("export to %s: %v", *out, err)
		}
		fmt.Printf("exported %d gateways to %s\n", len(s.Gateways()), *out)
	case "serve":
		serve(s, reg, *addr)
	default:
		fmt.Fprintf(os.Stderr, "homestore: unknown command %q\n", cmd)
		usage()
	}
}

// serve mounts the query API on the observability server and blocks
// until interrupted.
func serve(s *homestore.Store, reg *obs.Registry, addr string) {
	logger := slogx.With("component", "homestore")
	api := query.New(query.Config{Store: s, Registry: reg})
	srv, err := obs.NewServer(addr, reg, obs.WithHandler("/api/v1/", api.Handler()))
	if err != nil {
		fatal("serve on %s: %v", addr, err)
	}
	defer func() { _ = srv.Close() }() //homesight:ignore unchecked-close — best-effort shutdown at exit
	logger.Info("query server listening", "addr", srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	logger.Info("shutting down")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "homestore: "+format+"\n", args...)
	os.Exit(1)
}

// inspectReport is the -json shape; the human rendering prints the same
// fields.
type inspectReport struct {
	Start    time.Time               `json:"start"`
	Step     string                  `json:"step"`
	Stats    homestore.Stats         `json:"stats"`
	Gateways []inspectGateway        `json:"gateways"`
	Segments []homestore.SegmentInfo `json:"segments"`
}

type inspectGateway struct {
	ID      string `json:"id"`
	Devices int    `json:"devices"`
}

func inspect(s *homestore.Store, asJSON bool) {
	rep := inspectReport{
		Start:    s.Start(),
		Step:     s.Step().String(),
		Stats:    s.Stats(),
		Segments: s.SegmentInfos(),
	}
	for _, gw := range s.Gateways() {
		rep.Gateways = append(rep.Gateways, inspectGateway{ID: gw, Devices: len(s.Devices(gw))})
	}
	if asJSON {
		// The same versioned envelope the HTTP API speaks, so scripted
		// consumers parse one shape regardless of transport.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(query.Wrap(rep)); err != nil {
			fatal("encode: %v", err)
		}
		return
	}
	st := rep.Stats
	fmt.Printf("campaign: start %s, step %s\n", rep.Start.Format(time.RFC3339), rep.Step)
	fmt.Printf("points:   %d total (%d in segments, %d in memtable/WAL), %d series, %d duplicates dropped\n",
		st.Points, st.SegmentPoints, st.MemPoints, st.Series, st.DupPoints)
	fmt.Printf("wal:      %d records replayed, %d bytes active, %d torn tails truncated\n",
		st.WALRecords, st.WALBytes, st.WALTruncations)
	if st.Compression > 0 {
		fmt.Printf("segments: %d (%d bytes, %.2fx compression vs raw 16-byte points)\n",
			st.Segments, st.SegmentBytes, st.Compression)
	} else {
		fmt.Printf("segments: %d\n", st.Segments)
	}
	for _, si := range rep.Segments {
		fmt.Printf("  seq %d: %d series, %d points, %d bytes, [%s, %s]\n",
			si.Seq, si.Series, si.Points, si.Bytes,
			time.Unix(si.MinTs, 0).UTC().Format(time.RFC3339),
			time.Unix(si.MaxTs, 0).UTC().Format(time.RFC3339))
	}
	fmt.Printf("gateways: %d\n", len(rep.Gateways))
	for _, gw := range rep.Gateways {
		fmt.Printf("  %s: %d devices\n", gw.ID, gw.Devices)
	}
}
