module homesight

go 1.22
