GO ?= go

.PHONY: build test race vet lint check

build: ## compile every package
	$(GO) build ./...

test: ## unit + integration + property-based tests
	$(GO) test ./...

race: ## full test suite under the race detector
	$(GO) test -race ./...

vet: ## stock go vet
	$(GO) vet ./...

lint: ## project-specific analyzers (sig-gate, float-eq, dropped-err, naked-goroutine, bare-alpha)
	$(GO) run ./cmd/homesight-vet ./...

check: vet race lint ## the full CI gate: vet + race tests + homesight-vet
	@echo "check: all gates passed"
