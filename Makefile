GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet lint bench bench-build bench-store test-faults fuzz-smoke obs-smoke check

build: ## compile every package
	$(GO) build ./...

test: ## unit + integration + property-based tests
	$(GO) test ./...

race: ## full test suite under the race detector
	$(GO) test -race ./...

vet: ## stock go vet
	$(GO) vet ./...

lint: ## project-specific analyzers (sig-gate, float-eq, dropped-err, unchecked-close, naked-goroutine, bare-alpha, zero-sentinel, printf-log)
	$(GO) run ./cmd/homesight-vet ./...

test-faults: ## deterministic fault-injection suite for the collection pipeline, under -race
	$(GO) test -race -run 'TestFault' -count=1 ./internal/telemetry/...

bench: ## runner engine benchmarks; writes BENCH_runner.json (ns/op, cache hit rate)
	HOMESIGHT_BENCH_JSON=BENCH_runner.json $(GO) test -run TestBenchRunnerJSON -count=1 .
	$(GO) test -run NONE -bench BenchmarkRunner -benchtime 1x .

bench-build: ## compile the benchmark harness without running it (check smoke)
	$(GO) test -c -o /dev/null .

bench-store: ## store append/select/compression benchmarks; writes BENCH_store.json
	HOMESIGHT_BENCH_STORE_JSON=$(abspath BENCH_store.json) $(GO) test -run TestBenchStoreJSON -count=1 ./internal/store

fuzz-smoke: ## short fuzz pass ($(FUZZTIME)/target) over the store codec and WAL replay
	$(GO) test -run NONE -fuzz '^FuzzBlockCodec$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run NONE -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/store

obs-smoke: ## start cmd/experiments with -debug-addr, curl /metrics + /healthz, grep required series
	GO="$(GO)" sh scripts/obs_smoke.sh

check: vet race lint test-faults bench-build bench-store fuzz-smoke obs-smoke ## the full CI gate: vet + race tests + homesight-vet + fault suite + bench smoke + store bench + fuzz smoke + obs smoke
	@echo "check: all gates passed"
