GO ?= go
FUZZTIME ?= 30s
SARIF ?= homesight-vet.sarif

.PHONY: build test race vet lint vet-fix-check vet-sarif bench bench-build bench-scaling bench-store bench-query bench-fleet bench-stream test-faults fuzz-smoke obs-smoke check

build: ## compile every package
	$(GO) build ./...

test: ## unit + integration + property-based tests
	$(GO) test ./...

race: ## full test suite under the race detector
	$(GO) test -race ./...

vet: ## stock go vet
	$(GO) vet ./...

lint: ## project-specific analyzers (13 rules, see ANALYSIS.md); fails on baseline drift
	$(GO) run ./cmd/homesight-vet -baseline .homesight-vet-baseline ./...

vet-fix-check: ## fail if homesight-vet -fix would rewrite any file (suggested fixes must be applied or annotated)
	$(GO) run ./cmd/homesight-vet -fix-dry-run ./...

vet-sarif: ## write the machine-readable report CI uploads as an artifact
	$(GO) run ./cmd/homesight-vet -format=sarif ./... > $(SARIF) || true
	@grep -q '"version": "2.1.0"' $(SARIF) && echo "vet-sarif: wrote $(SARIF)"

test-faults: ## deterministic fault-injection suite for the collection pipeline, fleet tier and live analytics, under -race
	$(GO) test -race -run 'TestFault' -count=1 ./internal/telemetry/... ./internal/fleet/... ./internal/livestats/...

bench: ## runner engine benchmarks; writes BENCH_runner.json (ns/op, cache hit rate)
	HOMESIGHT_BENCH_JSON=BENCH_runner.json $(GO) test -run TestBenchRunnerJSON -count=1 .
	$(GO) test -run NONE -bench BenchmarkRunner -benchtime 1x .

bench-build: ## compile the benchmark harness without running it (check smoke)
	$(GO) test -c -o /dev/null .

bench-scaling: ## enforce the p=4 >= 2.5x speedup floor on the full suite (skips on hosts with <4 CPUs)
	HOMESIGHT_BENCH_SCALING=1 $(GO) test -run TestRunnerScalingFloor -count=1 -v .

bench-store: ## store append/select/compression benchmarks; writes BENCH_store.json
	HOMESIGHT_BENCH_STORE_JSON=$(abspath BENCH_store.json) $(GO) test -run TestBenchStoreJSON -count=1 ./internal/store

bench-query: ## concurrent-read query benchmarks (raw vs 8h rollup, cache hit rate); writes BENCH_query.json
	HOMESIGHT_BENCH_QUERY_JSON=$(abspath BENCH_query.json) $(GO) test -run TestBenchQueryJSON -count=1 ./internal/query

bench-fleet: ## sharded-ingest throughput at 1/2/4 shards (scaling floor enforced on >=4-CPU hosts); writes BENCH_fleet.json
	HOMESIGHT_BENCH_FLEET_JSON=$(abspath BENCH_fleet.json) $(GO) test -run TestBenchFleetJSON -count=1 -v ./internal/fleet

bench-stream: ## livestats per-report cost (O(1) floor: deep-stream/early ratio) and snapshot latency; writes BENCH_stream.json
	HOMESIGHT_BENCH_STREAM_JSON=$(abspath BENCH_stream.json) $(GO) test -run TestBenchStreamJSON -count=1 ./internal/livestats

fuzz-smoke: ## short fuzz pass ($(FUZZTIME)/target) over the store codecs, WAL replay, and vet directive parser
	$(GO) test -run NONE -fuzz '^FuzzBlockCodec$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run NONE -fuzz '^FuzzRollupCodec$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run NONE -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run NONE -fuzz '^FuzzDirectiveParser$$' -fuzztime $(FUZZTIME) ./internal/analysis
	$(GO) test -run NONE -fuzz '^FuzzBatchFrame$$' -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run NONE -fuzz '^FuzzQuantileSketch$$' -fuzztime $(FUZZTIME) ./internal/livestats
	$(GO) test -run NONE -fuzz '^FuzzRankSketch$$' -fuzztime $(FUZZTIME) ./internal/livestats

obs-smoke: ## start cmd/experiments with -debug-addr, curl /metrics + /healthz, grep required series
	GO="$(GO)" sh scripts/obs_smoke.sh

check: vet race lint vet-fix-check vet-sarif test-faults bench-build bench-scaling bench-store bench-query bench-fleet bench-stream fuzz-smoke obs-smoke ## the full CI gate: vet + race tests + homesight-vet (baseline) + fix drift + SARIF artifact + fault suite + bench smoke + scaling floor + store bench + query bench + fleet bench + stream bench + fuzz smoke + obs smoke
	@echo "check: all gates passed"
